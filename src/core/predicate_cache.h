#ifndef SNOWPRUNE_CORE_PREDICATE_CACHE_H_
#define SNOWPRUNE_CORE_PREDICATE_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <functional>

#include "common/mutex.h"
#include "storage/table.h"

namespace snowprune {

namespace jit {
struct CompiledPredicate;
}  // namespace jit

/// Predicate caching extended to top-k queries (§8.2): after a top-k query
/// runs, the set of micro-partitions that contributed rows to the final heap
/// is stored under the query's plan-shape fingerprint. A repeat execution
/// scans only the cached partitions (plus anything inserted since).
///
/// DML safety rules follow the paper exactly:
///   INSERT                      -> safe; new partitions are appended to the
///                                  cached scan set at lookup time.
///   UPDATE on non-order column  -> safe (row order unchanged).
///   UPDATE on the order column  -> invalidates (rows may reorder).
///   DELETE                      -> invalidates entries containing a deleted
///                                  partition (the k+1-th row may live
///                                  elsewhere); other entries get their
///                                  partition ids remapped.
///
/// Thread safety: the cache is shared by every engine pointed at it, and
/// engines may run queries concurrently; all operations (including the
/// hit/miss counters) synchronize on one internal mutex. The lock
/// discipline is compile-checked: every entry map, counter, and in-flight
/// record is SNOW_GUARDED_BY(mutex_).
///
/// Population is *coalesced*: a plain Lookup/Insert pair is individually
/// atomic but a miss→recompute→Insert sequence is not, so concurrent
/// identical queries used to recompute the same entry in parallel (benign —
/// last insert wins — but duplicated work). LookupOrPopulate closes that
/// window: the first thread to miss a fingerprint becomes the populating
/// owner (it receives a PopulateTicket and is expected to Insert), and
/// every other thread asking for the same fingerprint blocks until the
/// owner publishes — then hits — or abandons the ticket — then one waiter
/// takes over as the new owner.
class PredicateCache {
  /// An in-flight coalesced population: waiters block on `cv` until the
  /// owner publishes (Insert) or abandons (ticket destruction). Private;
  /// declared first so PopulateTicket can hold a reference to one.
  /// `resolved` is guarded by the owning cache's mutex_ (a nested struct
  /// cannot name the outer member in an annotation; waiters only ever read
  /// it in LookupOrPopulate's wait loop, under that mutex).
  struct InFlight {
    CondVar cv;
    bool resolved = false;
  };

 public:
  /// Ownership handle for a coalesced population (see LookupOrPopulate).
  /// Destroying an unpublished ticket abandons the population and releases
  /// any waiters, so error paths can never strand them. Move-only.
  class PopulateTicket {
   public:
    PopulateTicket() = default;
    ~PopulateTicket() { Abandon(); }
    PopulateTicket(PopulateTicket&& other) noexcept
        : cache_(other.cache_),
          fingerprint_(std::move(other.fingerprint_)),
          state_(std::move(other.state_)) {
      other.cache_ = nullptr;
    }
    PopulateTicket& operator=(PopulateTicket&& other) noexcept {
      if (this != &other) {
        Abandon();
        cache_ = other.cache_;
        fingerprint_ = std::move(other.fingerprint_);
        state_ = std::move(other.state_);
        other.cache_ = nullptr;
      }
      return *this;
    }
    PopulateTicket(const PopulateTicket&) = delete;
    PopulateTicket& operator=(const PopulateTicket&) = delete;

    /// True while this ticket owns an in-flight population (the holder is
    /// expected to Insert under the same fingerprint).
    bool owns() const { return cache_ != nullptr; }

   private:
    friend class PredicateCache;
    PopulateTicket(PredicateCache* cache, std::string fingerprint,
                   std::shared_ptr<InFlight> state)
        : cache_(cache),
          fingerprint_(std::move(fingerprint)),
          state_(std::move(state)) {}
    void Abandon();

    PredicateCache* cache_ = nullptr;
    std::string fingerprint_;
    /// Identifies *this* population generation, so a late abandon cannot
    /// disturb a successor population of the same fingerprint.
    std::shared_ptr<InFlight> state_;
  };

  explicit PredicateCache(size_t capacity = 1024) : capacity_(capacity) {}

  /// Records the contributing partitions of a finished top-k query.
  /// `order_column` is the ORDER BY column's name (update-safety tracking).
  void Insert(const std::string& fingerprint, const Table& table,
              std::string order_column, std::vector<PartitionId> partitions)
      SNOW_EXCLUDES(mutex_);

  /// Returns the scan set for a repeated query: cached partitions plus any
  /// partition appended to the table after the entry was created. nullopt on
  /// miss or after invalidation.
  std::optional<std::vector<PartitionId>> Lookup(const std::string& fingerprint,
                                                 const Table& table) const
      SNOW_EXCLUDES(mutex_);

  /// Coalescing lookup. On a hit, behaves like Lookup. On a miss, the first
  /// caller receives the populating ticket (`ticket->owns()` true) and must
  /// eventually Insert under the same fingerprint (or let the ticket die);
  /// concurrent callers for the same fingerprint block until the owner
  /// resolves, then hit (after Insert) or re-race for ownership (after an
  /// abandon). Waits are bounded by the owner's query: one computation per
  /// population instead of one per concurrent identical query.
  std::optional<std::vector<PartitionId>> LookupOrPopulate(
      const std::string& fingerprint, const Table& table,
      PopulateTicket* ticket) SNOW_EXCLUDES(mutex_);

  /// DML notifications (the engine calls these alongside Table mutations).
  void OnInsert(const Table& table);
  void OnUpdate(const Table& table, const std::string& column)
      SNOW_EXCLUDES(mutex_);
  void OnDelete(const Table& table, PartitionId deleted_pid)
      SNOW_EXCLUDES(mutex_);

  size_t size() const SNOW_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return entries_.size();
  }
  int64_t hits() const SNOW_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return hits_;
  }
  int64_t misses() const SNOW_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return misses_;
  }
  /// Number of lookups that blocked behind another thread's population
  /// (each would have been a duplicate computation without coalescing).
  int64_t coalesced_waits() const SNOW_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return coalesced_waits_;
  }

  /// A mutually consistent view of all counters. Under inter-query
  /// concurrency the individual accessors can tear against each other
  /// (hits sampled before a query, misses after); service-layer reporting
  /// reads everything under one lock acquisition instead of four.
  struct Counters {
    size_t size = 0;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t coalesced_waits = 0;
    double HitRate() const {
      const int64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };
  Counters snapshot() const SNOW_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return Counters{entries_.size(), hits_, misses_, coalesced_waits_};
  }

  // ---- Expression specialization tier (src/expr/jit/) --------------------

  /// Bumps and returns the entry's hit count — the promotion signal: once it
  /// crosses ExecConfig::specialize_after, the engine compiles the entry's
  /// predicate. Returns 0 when the fingerprint has no live entry.
  int64_t NoteHit(const std::string& fingerprint) SNOW_EXCLUDES(mutex_);

  /// The entry's compiled program, validated against the table instance the
  /// program was compiled for. A stale program (DML replaced the table) is
  /// dropped and counted as a jit.invalidation.
  std::shared_ptr<const jit::CompiledPredicate> GetProgram(
      const std::string& fingerprint, const Table& table)
      SNOW_EXCLUDES(mutex_);

  /// Returns the entry's program, compiling it exactly once under
  /// concurrency: the compile callback runs while the cache mutex is held
  /// (compilation is microseconds — cheaper than a second condition-variable
  /// protocol), so N streams crossing the promotion threshold together
  /// produce one compilation and share the result. Returns nullptr when the
  /// entry is gone or the callback declines (uncompilable shape; recorded so
  /// the entry is not re-tried on every hit).
  std::shared_ptr<const jit::CompiledPredicate> GetOrCompileProgram(
      const std::string& fingerprint, const Table& table,
      const std::function<std::shared_ptr<const jit::CompiledPredicate>()>&
          compile) SNOW_EXCLUDES(mutex_);

 private:
  struct Entry {
    std::string table_name;
    std::string order_column;
    std::vector<PartitionId> partitions;
    size_t table_partitions_at_insert = 0;
    /// Table *version* identity: a ReplaceTable swap installs a new Table
    /// object under the same name, whose data owes nothing to this entry's
    /// partitions — lookups validate the instance and miss on mismatch.
    uint64_t table_instance = 0;
    /// Specialization state: hits since insert, and the compiled bytecode
    /// program once the entry was promoted (shared across streams/shards).
    int64_t hits = 0;
    std::shared_ptr<const jit::CompiledPredicate> program;
    /// A promotion that failed to compile (unsupported shape); stops every
    /// later hit from re-running the compiler.
    bool compile_declined = false;
  };

  /// Counts a dropped compiled program (jit.invalidations); called on every
  /// entry-erase path.
  static void NoteInvalidated(const Entry& entry);

  void EvictIfNeeded() SNOW_REQUIRES(mutex_);
  /// The entry's scan set (with post-insert partitions appended), or
  /// nullopt. No counter updates.
  std::optional<std::vector<PartitionId>> EntryScanSetLocked(
      const std::string& fingerprint, const Table& table) const
      SNOW_REQUIRES(mutex_);
  /// Wakes waiters and retires the in-flight record, if any.
  void ResolveInFlightLocked(const std::string& fingerprint)
      SNOW_REQUIRES(mutex_);
  /// Entry point for PopulateTicket::Abandon (takes the lock itself); only
  /// resolves when `state` still is the fingerprint's current population.
  void AbandonPopulate(const std::string& fingerprint,
                       const std::shared_ptr<InFlight>& state)
      SNOW_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  size_t capacity_;
  std::map<std::string, Entry> entries_ SNOW_GUARDED_BY(mutex_);
  std::list<std::string> insertion_order_
      SNOW_GUARDED_BY(mutex_);  // FIFO eviction
  /// Fingerprints currently being populated (shared_ptr so waiters survive
  /// the record's removal from the map).
  std::map<std::string, std::shared_ptr<InFlight>> inflight_
      SNOW_GUARDED_BY(mutex_);
  mutable int64_t hits_ SNOW_GUARDED_BY(mutex_) = 0;
  mutable int64_t misses_ SNOW_GUARDED_BY(mutex_) = 0;
  int64_t coalesced_waits_ SNOW_GUARDED_BY(mutex_) = 0;
};

}  // namespace snowprune

#endif  // SNOWPRUNE_CORE_PREDICATE_CACHE_H_
