#ifndef SNOWPRUNE_CORE_PREDICATE_CACHE_H_
#define SNOWPRUNE_CORE_PREDICATE_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "storage/table.h"

namespace snowprune {

/// Predicate caching extended to top-k queries (§8.2): after a top-k query
/// runs, the set of micro-partitions that contributed rows to the final heap
/// is stored under the query's plan-shape fingerprint. A repeat execution
/// scans only the cached partitions (plus anything inserted since).
///
/// DML safety rules follow the paper exactly:
///   INSERT                      -> safe; new partitions are appended to the
///                                  cached scan set at lookup time.
///   UPDATE on non-order column  -> safe (row order unchanged).
///   UPDATE on the order column  -> invalidates (rows may reorder).
///   DELETE                      -> invalidates entries containing a deleted
///                                  partition (the k+1-th row may live
///                                  elsewhere); other entries get their
///                                  partition ids remapped.
///
/// Thread safety: the cache is shared by every engine pointed at it, and
/// engines may run queries concurrently; all operations (including the
/// hit/miss counters) synchronize on one internal mutex. Lookup/Insert are
/// individually atomic but a miss→recompute→Insert sequence is not: two
/// threads missing the same fingerprint may both recompute before one
/// inserts. That race window is benign (last insert wins, entries are
/// equivalent) and mirrors the paper's cache, which never blocks a query on
/// another's population.
class PredicateCache {
 public:
  explicit PredicateCache(size_t capacity = 1024) : capacity_(capacity) {}

  /// Records the contributing partitions of a finished top-k query.
  /// `order_column` is the ORDER BY column's name (update-safety tracking).
  void Insert(const std::string& fingerprint, const Table& table,
              std::string order_column, std::vector<PartitionId> partitions);

  /// Returns the scan set for a repeated query: cached partitions plus any
  /// partition appended to the table after the entry was created. nullopt on
  /// miss or after invalidation.
  std::optional<std::vector<PartitionId>> Lookup(const std::string& fingerprint,
                                                 const Table& table) const;

  /// DML notifications (the engine calls these alongside Table mutations).
  void OnInsert(const Table& table);
  void OnUpdate(const Table& table, const std::string& column);
  void OnDelete(const Table& table, PartitionId deleted_pid);

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }
  int64_t hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
  }
  int64_t misses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
  }

 private:
  struct Entry {
    std::string table_name;
    std::string order_column;
    std::vector<PartitionId> partitions;
    size_t table_partitions_at_insert;
  };

  /// Caller must hold mutex_.
  void EvictIfNeeded();

  mutable std::mutex mutex_;
  size_t capacity_;
  std::map<std::string, Entry> entries_;
  std::list<std::string> insertion_order_;  // FIFO eviction
  mutable int64_t hits_ = 0;
  mutable int64_t misses_ = 0;
};

}  // namespace snowprune

#endif  // SNOWPRUNE_CORE_PREDICATE_CACHE_H_
