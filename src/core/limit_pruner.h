#ifndef SNOWPRUNE_CORE_LIMIT_PRUNER_H_
#define SNOWPRUNE_CORE_LIMIT_PRUNER_H_

#include <cstdint>

#include "core/filter_pruner.h"
#include "storage/table.h"

namespace snowprune {

/// Classification of a LIMIT pruning attempt, matching the rows of the
/// paper's Table 2.
enum class LimitPruneOutcome {
  kAlreadyMinimal,   ///< Scan set had <= 1 partition after filter pruning.
  kNoFullyMatching,  ///< Fully-matching rows < k (or none identified).
  kPrunedToZero,     ///< k == 0: no partition needs to be read.
  kPrunedToOne,      ///< Scan set reduced to exactly 1 partition.
  kPrunedToMany,     ///< Reduced, but large k required > 1 partition.
};

const char* ToString(LimitPruneOutcome outcome);

struct LimitPruneResult {
  ScanSet scan_set;
  LimitPruneOutcome outcome = LimitPruneOutcome::kNoFullyMatching;
  int64_t pruned = 0;

  bool applied() const {
    return outcome == LimitPruneOutcome::kPrunedToZero ||
           outcome == LimitPruneOutcome::kPrunedToOne ||
           outcome == LimitPruneOutcome::kPrunedToMany;
  }
};

/// LIMIT pruning (§4): if the fully-matching partitions identified by filter
/// pruning jointly contain at least k rows, the scan set shrinks to the
/// minimal set of fully-matching partitions covering k — globally IO-optimal
/// for supported queries, using only min/max metadata.
///
/// When fully-matching rows fall short of k, no pruning is possible, but the
/// scan set is reordered to start with fully-matching partitions, which
/// "promises faster query execution times" (§4.1).
class LimitPruner {
 public:
  static LimitPruneResult Prune(const Table& table,
                                const FilterPruneResult& filtered,
                                int64_t limit_k);
};

}  // namespace snowprune

#endif  // SNOWPRUNE_CORE_LIMIT_PRUNER_H_
