#include "common/value.h"

#include <cassert>
#include <sstream>

namespace snowprune {

const char* ToString(DataType t) {
  switch (t) {
    case DataType::kBool: return "bool";
    case DataType::kInt64: return "int64";
    case DataType::kFloat64: return "float64";
    case DataType::kString: return "string";
  }
  return "?";
}

DataType Value::type() const {
  assert(!is_null());
  if (is_bool()) return DataType::kBool;
  if (is_int64()) return DataType::kInt64;
  if (is_float64()) return DataType::kFloat64;
  return DataType::kString;
}

int Value::Compare(const Value& a, const Value& b) {
  assert(!a.is_null() && !b.is_null());
  if (a.is_string() && b.is_string()) {
    return a.string_value().compare(b.string_value());
  }
  if (a.is_bool() && b.is_bool()) {
    return static_cast<int>(a.bool_value()) - static_cast<int>(b.bool_value());
  }
  assert(a.is_numeric() && b.is_numeric());
  if (a.is_int64() && b.is_int64()) {
    int64_t x = a.int64_value(), y = b.int64_value();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  double x = a.AsDouble(), y = b.AsDouble();
  return x < y ? -1 : (x > y ? 1 : 0);
}

bool Value::operator==(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  if (is_string() != other.is_string() || is_bool() != other.is_bool()) {
    return false;
  }
  return Compare(*this, other) == 0;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_bool()) return bool_value() ? "true" : "false";
  if (is_int64()) return std::to_string(int64_value());
  if (is_float64()) {
    std::ostringstream os;
    os << float64_value();
    return os.str();
  }
  return "'" + string_value() + "'";
}

namespace {

uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t HashBytes(const void* data, size_t len) {
  // FNV-1a, finalized with a mix round.
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

}  // namespace

uint64_t HashBoolValue(bool b) { return Mix64(b ? 3 : 5); }

uint64_t HashStringValue(const std::string& s) {
  return HashBytes(s.data(), s.size());
}

uint64_t HashFloat64Value(double d) {
  int64_t as_int = static_cast<int64_t>(d);
  if (static_cast<double>(as_int) == d) {
    // Integral numerics (2 and 2.0) hash identically.
    return Mix64(static_cast<uint64_t>(as_int) ^ 0xabcdef12345678ULL);
  }
  if (d == 0.0) d = 0.0;  // canonicalize -0.0
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  __builtin_memcpy(&bits, &d, sizeof(bits));
  return Mix64(bits);
}

uint64_t HashInt64Value(int64_t v) {
  // Through the same canonical-double funnel as the boxed path (AsDouble),
  // so Value(2) and an int64 column cell of 2 hash identically.
  return HashFloat64Value(static_cast<double>(v));
}

uint64_t HashValue(const Value& v) {
  if (v.is_null()) return 0x9ae16a3b2f90404fULL;
  if (v.is_bool()) return HashBoolValue(v.bool_value());
  if (v.is_string()) return HashStringValue(v.string_value());
  return HashFloat64Value(v.AsDouble());
}

}  // namespace snowprune
