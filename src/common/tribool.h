#ifndef SNOWPRUNE_COMMON_TRIBOOL_H_
#define SNOWPRUNE_COMMON_TRIBOOL_H_

namespace snowprune {

/// Three-valued (Kleene) logic used by pruning: evaluating a predicate
/// against a partition's zone map yields
///   kFalse -> no row in the partition can satisfy the predicate (prunable),
///   kTrue  -> every row satisfies it (the partition is *fully matching*),
///   kMaybe -> the partition is partially matching and must be scanned.
enum class TriBool { kFalse = 0, kMaybe = 1, kTrue = 2 };

/// Kleene conjunction: False dominates, True is the identity.
inline TriBool TriAnd(TriBool a, TriBool b) {
  if (a == TriBool::kFalse || b == TriBool::kFalse) return TriBool::kFalse;
  if (a == TriBool::kTrue && b == TriBool::kTrue) return TriBool::kTrue;
  return TriBool::kMaybe;
}

/// Kleene disjunction: True dominates, False is the identity.
inline TriBool TriOr(TriBool a, TriBool b) {
  if (a == TriBool::kTrue || b == TriBool::kTrue) return TriBool::kTrue;
  if (a == TriBool::kFalse && b == TriBool::kFalse) return TriBool::kFalse;
  return TriBool::kMaybe;
}

/// Kleene negation: Maybe is a fixed point.
inline TriBool TriNot(TriBool a) {
  if (a == TriBool::kTrue) return TriBool::kFalse;
  if (a == TriBool::kFalse) return TriBool::kTrue;
  return TriBool::kMaybe;
}

inline TriBool FromBool(bool b) { return b ? TriBool::kTrue : TriBool::kFalse; }

inline const char* ToString(TriBool t) {
  switch (t) {
    case TriBool::kFalse: return "false";
    case TriBool::kMaybe: return "maybe";
    case TriBool::kTrue: return "true";
  }
  return "?";
}

}  // namespace snowprune

#endif  // SNOWPRUNE_COMMON_TRIBOOL_H_
