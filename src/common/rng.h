#ifndef SNOWPRUNE_COMMON_RNG_H_
#define SNOWPRUNE_COMMON_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace snowprune {

/// Deterministic pseudo-random generator (xoshiro256** seeded via
/// splitmix64). Every workload generator takes an explicit seed so that all
/// experiments in this repository are exactly reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Samples an index from a discrete distribution given by non-negative
  /// weights (not necessarily normalized).
  size_t Discrete(const std::vector<double>& weights);

  /// Uniform alphanumeric string of the given length.
  std::string AlphaString(size_t length);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Zipf(s) sampler over ranks 1..n using a precomputed inverse CDF table.
/// Rank 1 is the most frequent outcome. Used to model plan-shape
/// repetitiveness (Figure 12) and skewed value distributions.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);

  /// Samples a rank in [1, n].
  size_t Sample(Rng* rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace snowprune

#endif  // SNOWPRUNE_COMMON_RNG_H_
