#include "common/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace snowprune {

namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& lane : state_) lane = SplitMix64(&s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t r;
  do {
    r = Next();
  } while (r >= limit);
  return lo + static_cast<int64_t>(r % span);
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1, u2;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  u2 = Uniform();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * radius * std::cos(theta);
}

size_t Rng::Discrete(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  double target = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

std::string Rng::AlphaString(size_t length) {
  static const char kAlphabet[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
  std::string s;
  s.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    s.push_back(kAlphabet[UniformInt(0, sizeof(kAlphabet) - 2)]);
  }
  return s;
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (double& c : cdf_) c /= acc;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->Uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin()) + 1;
}

}  // namespace snowprune
