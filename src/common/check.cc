#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace snowprune {
namespace check_internal {

void CheckFail(const char* file, int line, const char* expr,
               const std::string& values) {
  std::fprintf(stderr, "%s:%d: %s failed%s%s\n", file, line, expr,
               values.empty() ? "" : " ", values.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace check_internal
}  // namespace snowprune
