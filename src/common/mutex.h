#ifndef SNOWPRUNE_COMMON_MUTEX_H_
#define SNOWPRUNE_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace snowprune {

class CondVar;

/// Annotation-aware mutex: std::mutex wrapped as a clang thread-safety
/// *capability*, so members can be declared SNOW_GUARDED_BY(mutex_) and
/// internal helpers SNOW_REQUIRES(mutex_) — making lock-discipline
/// violations a compile error under the clang CI job instead of a
/// probabilistic TSan repro. Zero-overhead: every method is an inline
/// forward to the std primitive.
class SNOW_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SNOW_ACQUIRE() { mu_.lock(); }
  void Unlock() SNOW_RELEASE() { mu_.unlock(); }
  bool TryLock() SNOW_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Documentation-only runtime assertion point (no-op at runtime): tells
  /// the analysis this path is only reached with the mutex held.
  void AssertHeld() const SNOW_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for Mutex, understood by the analysis as a scoped capability.
/// The whole codebase locks through this (or CondVar::Wait) — never through
/// bare Lock/Unlock pairs — so a lock leaked on an early-return path is
/// impossible by construction.
class SNOW_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) SNOW_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() SNOW_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable over Mutex. Wait() atomically releases and reacquires
/// the caller's mutex, exactly like std::condition_variable over a
/// unique_lock; the SNOW_REQUIRES(mu) contract makes calling it unlocked a
/// compile error.
///
/// The analysis is intra-procedural, so callers spell wait loops explicitly:
///
///   MutexLock lock(&mutex_);
///   while (!ready_) cv_.Wait(&mutex_);   // ready_ is SNOW_GUARDED_BY(mutex_)
///
/// (a predicate lambda would be analyzed as a separate lock-less function
/// and flag every guarded read inside it).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `*mu`, blocks until notified (spurious wakeups
  /// possible — always wait in a loop), and reacquires `*mu` before
  /// returning. The caller must hold `*mu`.
  void Wait(Mutex* mu) SNOW_REQUIRES(mu) {
    // Adopt the already-held std::mutex for the wait, then release the
    // unique_lock's ownership claim without unlocking: the capability stays
    // held across the call exactly as the annotation promises.
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace snowprune

#endif  // SNOWPRUNE_COMMON_MUTEX_H_
