#include "common/interval.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace snowprune {

const char* ToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

CompareOp Invert(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return CompareOp::kNe;
    case CompareOp::kNe: return CompareOp::kEq;
    case CompareOp::kLt: return CompareOp::kGe;
    case CompareOp::kLe: return CompareOp::kGt;
    case CompareOp::kGt: return CompareOp::kLe;
    case CompareOp::kGe: return CompareOp::kLt;
  }
  return op;
}

CompareOp Mirror(CompareOp op) {
  switch (op) {
    case CompareOp::kLt: return CompareOp::kGt;
    case CompareOp::kLe: return CompareOp::kGe;
    case CompareOp::kGt: return CompareOp::kLt;
    case CompareOp::kGe: return CompareOp::kLe;
    default: return op;
  }
}

Interval Interval::Unknown() {
  Interval r;
  r.maybe_null = true;
  return r;
}

Interval Interval::Point(const Value& v) {
  if (v.is_null()) return AllNull();
  Interval r;
  r.lo = v;
  r.hi = v;
  return r;
}

Interval Interval::Range(Value lo, Value hi, bool maybe_null) {
  Interval r;
  r.lo = std::move(lo);
  r.hi = std::move(hi);
  r.maybe_null = maybe_null;
  return r;
}

Interval Interval::AllNull() {
  Interval r;
  r.maybe_null = true;
  r.all_null = true;
  return r;
}

std::string Interval::ToString() const {
  if (all_null) return "[all-null]";
  std::string s = "[";
  s += lo ? lo->ToString() : "-inf";
  s += ", ";
  s += hi ? hi->ToString() : "+inf";
  s += "]";
  if (maybe_null) s += "?null";
  return s;
}

Interval Union(const Interval& a, const Interval& b) {
  if (a.all_null && b.all_null) return Interval::AllNull();
  if (a.all_null) {
    Interval r = b;
    r.maybe_null = true;
    return r;
  }
  if (b.all_null) {
    Interval r = a;
    r.maybe_null = true;
    return r;
  }
  Interval r;
  r.maybe_null = a.maybe_null || b.maybe_null;
  if (a.lo && b.lo) r.lo = Value::Compare(*a.lo, *b.lo) <= 0 ? *a.lo : *b.lo;
  if (a.hi && b.hi) r.hi = Value::Compare(*a.hi, *b.hi) >= 0 ? *a.hi : *b.hi;
  return r;
}

namespace {

double WidenDown(double x) {
  if (std::isfinite(x)) {
    return std::nextafter(x, -std::numeric_limits<double>::infinity());
  }
  return x;
}

double WidenUp(double x) {
  if (std::isfinite(x)) {
    return std::nextafter(x, std::numeric_limits<double>::infinity());
  }
  return x;
}

/// Turns a widened double bound into a Value, dropping non-finite bounds
/// back to "unbounded".
std::optional<Value> BoundFromDouble(double x) {
  if (!std::isfinite(x)) return std::nullopt;
  return Value(x);
}

bool BothInt(const Value& a, const Value& b) {
  return a.is_int64() && b.is_int64();
}

enum class ArithOp { kAdd, kSub, kMul };

/// Exact int64 op with overflow detection; returns false on overflow.
bool Int64Op(ArithOp op, int64_t a, int64_t b, int64_t* out) {
  switch (op) {
    case ArithOp::kAdd: return !__builtin_add_overflow(a, b, out);
    case ArithOp::kSub: return !__builtin_sub_overflow(a, b, out);
    case ArithOp::kMul: return !__builtin_mul_overflow(a, b, out);
  }
  return false;
}

double DoubleOp(ArithOp op, double a, double b) {
  switch (op) {
    case ArithOp::kAdd: return a + b;
    case ArithOp::kSub: return a - b;
    case ArithOp::kMul: return a * b;
  }
  return 0.0;
}

/// Combines one candidate endpoint pair; exact when both int64 and no
/// overflow, else widened double.
Value CombineEndpoint(ArithOp op, const Value& a, const Value& b, bool lower) {
  if (BothInt(a, b)) {
    int64_t out;
    if (Int64Op(op, a.int64_value(), b.int64_value(), &out)) return Value(out);
  }
  double d = DoubleOp(op, a.AsDouble(), b.AsDouble());
  return Value(lower ? WidenDown(d) : WidenUp(d));
}

struct NumericBounds {
  bool bounded_lo = false, bounded_hi = false;
  Value lo, hi;
};

bool ExtractNumeric(const Interval& a, NumericBounds* nb) {
  if (a.all_null) return false;
  if (a.lo) {
    if (!a.lo->is_numeric()) return false;
    nb->bounded_lo = true;
    nb->lo = *a.lo;
  }
  if (a.hi) {
    if (!a.hi->is_numeric()) return false;
    nb->bounded_hi = true;
    nb->hi = *a.hi;
  }
  return true;
}

Interval Arith(ArithOp op, const Interval& a, const Interval& b) {
  if (a.all_null || b.all_null) return Interval::AllNull();
  NumericBounds na, nb;
  if (!ExtractNumeric(a, &na) || !ExtractNumeric(b, &nb)) {
    Interval r = Interval::Unknown();
    r.maybe_null = a.maybe_null || b.maybe_null;
    return r;
  }
  Interval r;
  r.maybe_null = a.maybe_null || b.maybe_null;
  switch (op) {
    case ArithOp::kAdd:
      if (na.bounded_lo && nb.bounded_lo)
        r.lo = CombineEndpoint(op, na.lo, nb.lo, /*lower=*/true);
      if (na.bounded_hi && nb.bounded_hi)
        r.hi = CombineEndpoint(op, na.hi, nb.hi, /*lower=*/false);
      break;
    case ArithOp::kSub:
      if (na.bounded_lo && nb.bounded_hi)
        r.lo = CombineEndpoint(op, na.lo, nb.hi, /*lower=*/true);
      if (na.bounded_hi && nb.bounded_lo)
        r.hi = CombineEndpoint(op, na.hi, nb.lo, /*lower=*/false);
      break;
    case ArithOp::kMul: {
      // Products of unbounded ranges are unbounded unless the bounded side is
      // exactly zero; be conservative and require both fully bounded.
      if (!(na.bounded_lo && na.bounded_hi && nb.bounded_lo && nb.bounded_hi)) {
        break;
      }
      const Value* as[2] = {&na.lo, &na.hi};
      const Value* bs[2] = {&nb.lo, &nb.hi};
      bool first = true;
      Value best_lo, best_hi;
      for (const Value* x : as) {
        for (const Value* y : bs) {
          Value cand_lo = CombineEndpoint(op, *x, *y, /*lower=*/true);
          Value cand_hi = CombineEndpoint(op, *x, *y, /*lower=*/false);
          if (first) {
            best_lo = cand_lo;
            best_hi = cand_hi;
            first = false;
          } else {
            if (Value::Compare(cand_lo, best_lo) < 0) best_lo = cand_lo;
            if (Value::Compare(cand_hi, best_hi) > 0) best_hi = cand_hi;
          }
        }
      }
      r.lo = best_lo;
      r.hi = best_hi;
      break;
    }
  }
  return r;
}

}  // namespace

Interval Add(const Interval& a, const Interval& b) {
  return Arith(ArithOp::kAdd, a, b);
}
Interval Sub(const Interval& a, const Interval& b) {
  return Arith(ArithOp::kSub, a, b);
}
Interval Mul(const Interval& a, const Interval& b) {
  return Arith(ArithOp::kMul, a, b);
}

Interval Div(const Interval& a, const Interval& b) {
  if (a.all_null || b.all_null) return Interval::AllNull();
  NumericBounds na, nb;
  if (!ExtractNumeric(a, &na) || !ExtractNumeric(b, &nb) ||
      !(na.bounded_lo && na.bounded_hi && nb.bounded_lo && nb.bounded_hi)) {
    Interval r = Interval::Unknown();
    r.maybe_null = a.maybe_null || b.maybe_null;
    return r;
  }
  double blo = nb.lo.AsDouble(), bhi = nb.hi.AsDouble();
  Interval r;
  r.maybe_null = a.maybe_null || b.maybe_null;
  if (blo <= 0.0 && bhi >= 0.0) {
    // Divisor may be zero: result unbounded (and possibly NULL/error; SQL
    // engines raise, pruning must stay conservative).
    return r;
  }
  double alo = na.lo.AsDouble(), ahi = na.hi.AsDouble();
  double cands[4] = {alo / blo, alo / bhi, ahi / blo, ahi / bhi};
  double lo = cands[0], hi = cands[0];
  for (double c : cands) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  r.lo = BoundFromDouble(WidenDown(lo));
  r.hi = BoundFromDouble(WidenUp(hi));
  return r;
}

Interval Negate(const Interval& a) {
  if (a.all_null) return Interval::AllNull();
  Interval zero = Interval::Point(Value(int64_t{0}));
  return Sub(zero, a);
}

namespace {

/// True if values are of comparable kinds for pruning purposes.
bool Comparable(const Value& a, const Value& b) {
  if (a.is_string() || b.is_string()) return a.is_string() && b.is_string();
  if (a.is_bool() || b.is_bool()) return a.is_bool() && b.is_bool();
  return a.is_numeric() && b.is_numeric();
}

}  // namespace

TriBool CompareIntervals(const Interval& a, CompareOp op, const Interval& b) {
  // An all-NULL side means the comparison is NULL on every row: no row
  // matches, which is definitively False for pruning.
  if (a.all_null || b.all_null) return TriBool::kFalse;

  bool may_null = a.maybe_null || b.maybe_null;
  auto degrade = [may_null](TriBool t) {
    // NULL rows never satisfy the predicate, so kTrue ("all rows match")
    // weakens to kMaybe when NULLs are possible; kFalse is unaffected.
    if (t == TriBool::kTrue && may_null) return TriBool::kMaybe;
    return t;
  };

  // Validate comparability where bounds exist; mixed kinds -> Maybe.
  for (const auto* v : {&a.lo, &a.hi}) {
    for (const auto* w : {&b.lo, &b.hi}) {
      if (v->has_value() && w->has_value() && !Comparable(**v, **w)) {
        return TriBool::kMaybe;
      }
    }
  }

  const bool alo = a.lo.has_value(), ahi = a.hi.has_value();
  const bool blo = b.lo.has_value(), bhi = b.hi.has_value();
  auto cmp = [](const Value& x, const Value& y) { return Value::Compare(x, y); };

  switch (op) {
    case CompareOp::kLt:
      if (ahi && blo && cmp(*a.hi, *b.lo) < 0) return degrade(TriBool::kTrue);
      if (alo && bhi && cmp(*a.lo, *b.hi) >= 0) return TriBool::kFalse;
      return TriBool::kMaybe;
    case CompareOp::kLe:
      if (ahi && blo && cmp(*a.hi, *b.lo) <= 0) return degrade(TriBool::kTrue);
      if (alo && bhi && cmp(*a.lo, *b.hi) > 0) return TriBool::kFalse;
      return TriBool::kMaybe;
    case CompareOp::kGt:
      return CompareIntervals(b, CompareOp::kLt, a);
    case CompareOp::kGe:
      return CompareIntervals(b, CompareOp::kLe, a);
    case CompareOp::kEq:
      if (alo && bhi && cmp(*a.lo, *b.hi) > 0) return TriBool::kFalse;
      if (ahi && blo && cmp(*a.hi, *b.lo) < 0) return TriBool::kFalse;
      if (alo && ahi && blo && bhi && cmp(*a.lo, *a.hi) == 0 &&
          cmp(*b.lo, *b.hi) == 0 && cmp(*a.lo, *b.lo) == 0) {
        return degrade(TriBool::kTrue);
      }
      return TriBool::kMaybe;
    case CompareOp::kNe: {
      TriBool eq = CompareIntervals(a, CompareOp::kEq, b);
      // Careful: TriNot(kTrue from Eq) would claim "no row differs", which is
      // only sound because Eq==kTrue already implies both sides constant.
      if (eq == TriBool::kFalse) return degrade(TriBool::kTrue);
      if (eq == TriBool::kTrue) return TriBool::kFalse;
      return TriBool::kMaybe;
    }
  }
  return TriBool::kMaybe;
}

}  // namespace snowprune
