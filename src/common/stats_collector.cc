#include "common/stats_collector.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace snowprune {

void StatsCollector::Add(double sample) {
  samples_.push_back(sample);
  sorted_valid_ = false;
}

void StatsCollector::AddAll(const std::vector<double>& samples) {
  samples_.insert(samples_.end(), samples.begin(), samples.end());
  sorted_valid_ = false;
}

void StatsCollector::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double StatsCollector::Mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double StatsCollector::Min() const {
  EnsureSorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double StatsCollector::Max() const {
  EnsureSorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double StatsCollector::Percentile(double p) const {
  assert(!samples_.empty());
  EnsureSorted();
  if (p <= 0.0) return sorted_.front();
  if (p >= 100.0) return sorted_.back();
  double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = static_cast<size_t>(std::ceil(rank));
  double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double StatsCollector::CdfAt(double x) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

std::string StatsCollector::PercentileRow(const std::vector<double>& ps) const {
  std::string out;
  char buf[64];
  for (double p : ps) {
    std::snprintf(buf, sizeof(buf), "%8.2f", empty() ? 0.0 : Percentile(p));
    out += buf;
  }
  return out;
}

std::string StatsCollector::BoxPlotRow(double lo, double hi, int width) const {
  std::string row(static_cast<size_t>(width), ' ');
  if (empty() || hi <= lo) return row;
  auto pos = [&](double x) {
    double t = (x - lo) / (hi - lo);
    t = std::clamp(t, 0.0, 1.0);
    return static_cast<size_t>(std::lround(t * (width - 1)));
  };
  size_t pmin = pos(Percentile(0)), pq1 = pos(Percentile(25));
  size_t pmed = pos(Median()), pq3 = pos(Percentile(75));
  size_t pmax = pos(Percentile(100)), pmean = pos(Mean());
  for (size_t i = pmin; i <= pmax; ++i) row[i] = '-';
  for (size_t i = pq1; i <= pq3; ++i) row[i] = '=';
  row[pmin] = '|';
  row[pmax] = '|';
  row[pmean] = 'v';
  row[pmed] = '#';  // median wins when the markers coincide
  return row;
}

void StatsCollector::PrintCdf(const std::string& label, int points) const {
  std::printf("# CDF of %s (%zu samples)\n", label.c_str(), count());
  std::printf("%12s %10s\n", "percentile", "value");
  for (int i = 0; i <= points; ++i) {
    double p = 100.0 * i / points;
    std::printf("%11.1f%% %10.4f\n", p, empty() ? 0.0 : Percentile(p));
  }
}

}  // namespace snowprune
