#ifndef SNOWPRUNE_COMMON_CHECK_H_
#define SNOWPRUNE_COMMON_CHECK_H_

#include <sstream>
#include <string>

/// Invariant assertions for the pruning-soundness contracts the fuzz oracle
/// otherwise checks only end-to-end: selection vectors strictly ascending
/// and in-bounds, scan-set overrides subsets of the table at the shard
/// scatter edge, merged shard zone maps weaker-or-equal to every member's,
/// pruning counters never exceeding their totals.
///
/// SNOW_CHECK*  — always on, every build. For cheap, load-bearing checks.
/// SNOW_DCHECK* — debug builds only (no NDEBUG, or -DSNOW_FORCE_DCHECKS).
///                Free in release; the sanitizer CI jobs build debug
///                configs, so every DCHECK executes under ASan+UBSan on the
///                full test suite each run.
///
/// In release builds SNOW_DCHECK arguments are NOT evaluated (they sit in
/// an unevaluated sizeof so they still compile and their operands still
/// count as used); never put side effects in a check condition.
///
/// Failure prints the expression, its operand values, and file:line to
/// stderr, then aborts — death-testable, and sanitizer runs report it as a
/// hard failure under -fno-sanitize-recover.

#if defined(NDEBUG) && !defined(SNOW_FORCE_DCHECKS)
#define SNOW_DCHECK_IS_ON 0
#else
#define SNOW_DCHECK_IS_ON 1
#endif

namespace snowprune {
namespace check_internal {

/// Prints the failure and aborts. Out of line so the macro expansion stays
/// one branch + one call.
[[noreturn]] void CheckFail(const char* file, int line, const char* expr,
                            const std::string& values);

template <typename A, typename B>
std::string FormatOperands(const A& a, const B& b) {
  std::ostringstream os;
  os << "(lhs = " << a << ", rhs = " << b << ")";
  return os.str();
}

}  // namespace check_internal
}  // namespace snowprune

#define SNOW_CHECK(cond)                                        \
  ((cond) ? (void)0                                             \
          : ::snowprune::check_internal::CheckFail(             \
                __FILE__, __LINE__, "SNOW_CHECK(" #cond ")", ""))

// Binary comparison core: evaluates each operand exactly once, reports both
// values on failure. Signed/unsigned mixes are the caller's job to cast
// (the comparison compiles under -Wall -Wextra -Werror like any other).
#define SNOW_CHECK_OP_(a, b, op)                                           \
  do {                                                                     \
    auto&& snow_check_a_ = (a);                                            \
    auto&& snow_check_b_ = (b);                                            \
    if (!(snow_check_a_ op snow_check_b_)) {                               \
      ::snowprune::check_internal::CheckFail(                              \
          __FILE__, __LINE__, "SNOW_CHECK(" #a " " #op " " #b ")",         \
          ::snowprune::check_internal::FormatOperands(snow_check_a_,       \
                                                      snow_check_b_));     \
    }                                                                      \
  } while (0)

#define SNOW_CHECK_EQ(a, b) SNOW_CHECK_OP_(a, b, ==)
#define SNOW_CHECK_NE(a, b) SNOW_CHECK_OP_(a, b, !=)
#define SNOW_CHECK_LT(a, b) SNOW_CHECK_OP_(a, b, <)
#define SNOW_CHECK_LE(a, b) SNOW_CHECK_OP_(a, b, <=)
#define SNOW_CHECK_GT(a, b) SNOW_CHECK_OP_(a, b, >)
#define SNOW_CHECK_GE(a, b) SNOW_CHECK_OP_(a, b, >=)

#if SNOW_DCHECK_IS_ON

#define SNOW_DCHECK(cond) SNOW_CHECK(cond)
#define SNOW_DCHECK_EQ(a, b) SNOW_CHECK_EQ(a, b)
#define SNOW_DCHECK_NE(a, b) SNOW_CHECK_NE(a, b)
#define SNOW_DCHECK_LT(a, b) SNOW_CHECK_LT(a, b)
#define SNOW_DCHECK_LE(a, b) SNOW_CHECK_LE(a, b)
#define SNOW_DCHECK_GT(a, b) SNOW_CHECK_GT(a, b)
#define SNOW_DCHECK_GE(a, b) SNOW_CHECK_GE(a, b)

#else  // release: compile the condition, evaluate nothing.

#define SNOW_DCHECK(cond) ((void)sizeof(!(cond)))
#define SNOW_DCHECK_EQ(a, b) ((void)sizeof((a) == (b)))
#define SNOW_DCHECK_NE(a, b) ((void)sizeof((a) != (b)))
#define SNOW_DCHECK_LT(a, b) ((void)sizeof((a) < (b)))
#define SNOW_DCHECK_LE(a, b) ((void)sizeof((a) <= (b)))
#define SNOW_DCHECK_GT(a, b) ((void)sizeof((a) > (b)))
#define SNOW_DCHECK_GE(a, b) ((void)sizeof((a) >= (b)))

#endif  // SNOW_DCHECK_IS_ON

#endif  // SNOWPRUNE_COMMON_CHECK_H_
