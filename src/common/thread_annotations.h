#ifndef SNOWPRUNE_COMMON_THREAD_ANNOTATIONS_H_
#define SNOWPRUNE_COMMON_THREAD_ANNOTATIONS_H_

/// Portable wrappers for Clang Thread Safety Analysis attributes
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).
///
/// Under clang the macros expand to the analysis attributes and the CI job
/// building with `-Wthread-safety -Werror=thread-safety` turns every
/// lock-discipline violation — touching a SNOW_GUARDED_BY member without its
/// mutex, calling a SNOW_REQUIRES function unlocked, forgetting an unlock on
/// one path — into a compile error. Under every other compiler they expand
/// to nothing, so the annotations cost nothing and the code stays portable.
///
/// The annotations only bite on code written against the annotation-aware
/// `Mutex` / `MutexLock` / `CondVar` wrappers in common/mutex.h; raw
/// std::mutex use is invisible to the analysis, which is why the whole
/// concurrency surface is migrated onto the wrappers.
///
/// Two analysis caveats shape how the engine uses these:
///   - The analysis is intra-procedural: a condition-variable wait loop must
///     be an explicit `while (...) cv.Wait(&mu)` in the annotated function,
///     not a predicate lambda (the lambda body would be analyzed as a
///     separate, lock-less function).
///   - Constructor and destructor bodies are exempt (clang treats them as
///     NO_THREAD_SAFETY_ANALYSIS), which matches reality: no second thread
///     can hold a reference during construction/destruction.

#if defined(__clang__)
#define SNOW_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SNOW_THREAD_ANNOTATION_(x)
#endif

/// Marks a class as a lockable capability ("mutex").
#define SNOW_CAPABILITY(x) SNOW_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define SNOW_SCOPED_CAPABILITY SNOW_THREAD_ANNOTATION_(scoped_lockable)

/// The member may only be read or written while holding `x`.
#define SNOW_GUARDED_BY(x) SNOW_THREAD_ANNOTATION_(guarded_by(x))

/// The pointee may only be dereferenced while holding `x`.
#define SNOW_PT_GUARDED_BY(x) SNOW_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The function may only be called while already holding the capability.
#define SNOW_REQUIRES(...) \
  SNOW_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// The function acquires the capability and does not release it.
#define SNOW_ACQUIRE(...) \
  SNOW_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// The function releases a capability the caller holds.
#define SNOW_RELEASE(...) \
  SNOW_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns the given value.
#define SNOW_TRY_ACQUIRE(...) \
  SNOW_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// The function must NOT be called while holding the capability
/// (deadlock-by-re-entry documentation; checked on same-function paths).
#define SNOW_EXCLUDES(...) SNOW_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (tells the analysis so).
#define SNOW_ASSERT_CAPABILITY(x) \
  SNOW_THREAD_ANNOTATION_(assert_capability(x))

/// The function returns a reference to the given capability.
#define SNOW_RETURN_CAPABILITY(x) SNOW_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment proving why the access pattern is sound.
#define SNOW_NO_THREAD_SAFETY_ANALYSIS \
  SNOW_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // SNOWPRUNE_COMMON_THREAD_ANNOTATIONS_H_
