#include "common/trace.h"

#include <algorithm>
#include <functional>
#include <sstream>
#include <thread>

#include "common/check.h"

namespace snowprune {

namespace {

uint64_t ThisThreadId() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

void AppendJsonString(std::ostringstream* out, const std::string& s) {
  *out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') *out << '\\';
    *out << c;
  }
  *out << '"';
}

}  // namespace

int64_t TraceNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint32_t SpanBuffer::Begin(const char* name, uint32_t parent) {
  TraceSpan span;
  span.id = static_cast<uint32_t>(spans_.size()) + 1;
  span.parent = parent;
  span.name = name;
  span.start_ns = TraceNowNs();
  span.thread_id = ThisThreadId();
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void SpanBuffer::End(uint32_t id) {
  SNOW_DCHECK_GE(id, 1u);
  SNOW_DCHECK_LE(static_cast<size_t>(id), spans_.size());
  TraceSpan& span = spans_[id - 1];
  span.duration_ns = TraceNowNs() - span.start_ns;
}

void SpanBuffer::AnnotateInt(uint32_t id, const char* key, int64_t value) {
  SNOW_DCHECK_GE(id, 1u);
  SNOW_DCHECK_LE(static_cast<size_t>(id), spans_.size());
  TraceAnnotation a;
  a.key = key;
  a.int_value = value;
  spans_[id - 1].annotations.push_back(std::move(a));
}

uint32_t Trace::BeginSpan(const std::string& name, uint32_t parent) {
  SNOW_DCHECK_LE(static_cast<size_t>(parent), spans_.size());
  TraceSpan span;
  span.id = static_cast<uint32_t>(spans_.size()) + 1;
  span.parent = parent;
  span.name = name;
  span.start_ns = TraceNowNs();
  span.thread_id = ThisThreadId();
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Trace::EndSpan(uint32_t id) {
  SNOW_DCHECK_GE(id, 1u);
  SNOW_DCHECK_LE(static_cast<size_t>(id), spans_.size());
  TraceSpan& span = spans_[id - 1];
  span.duration_ns = TraceNowNs() - span.start_ns;
}

void Trace::AnnotateInt(uint32_t id, const std::string& key, int64_t value) {
  SNOW_DCHECK_GE(id, 1u);
  SNOW_DCHECK_LE(static_cast<size_t>(id), spans_.size());
  TraceAnnotation a;
  a.key = key;
  a.int_value = value;
  spans_[id - 1].annotations.push_back(std::move(a));
}

void Trace::AnnotateStr(uint32_t id, const std::string& key,
                        std::string value) {
  SNOW_DCHECK_GE(id, 1u);
  SNOW_DCHECK_LE(static_cast<size_t>(id), spans_.size());
  TraceAnnotation a;
  a.key = key;
  a.str_value = std::move(value);
  a.is_string = true;
  spans_[id - 1].annotations.push_back(std::move(a));
}

void Trace::MergeBuffer(SpanBuffer* buffer, uint32_t parent_id) {
  SNOW_DCHECK_LE(static_cast<size_t>(parent_id), spans_.size());
  const uint32_t offset = static_cast<uint32_t>(spans_.size());
  for (TraceSpan& span : buffer->spans()) {
    span.id += offset;
    span.parent = span.parent == 0 ? parent_id : span.parent + offset;
    spans_.push_back(std::move(span));
  }
  buffer->clear();
}

void Trace::MergeChildTrace(Trace* child, uint32_t parent_id) {
  SNOW_DCHECK_LE(static_cast<size_t>(parent_id), spans_.size());
  const uint32_t offset = static_cast<uint32_t>(spans_.size());
  for (TraceSpan& span : child->spans_) {
    span.id += offset;
    span.parent = span.parent == 0 ? parent_id : span.parent + offset;
    spans_.push_back(std::move(span));
  }
  child->spans_.clear();
  stage_tasks_.fetch_add(child->stage_tasks(), std::memory_order_relaxed);
  barrier_tasks_.fetch_add(child->barrier_tasks(), std::memory_order_relaxed);
  child->stage_tasks_.store(0, std::memory_order_relaxed);
  child->barrier_tasks_.store(0, std::memory_order_relaxed);
}

int64_t Trace::EpochNs() const {
  int64_t epoch = 0;
  bool first = true;
  for (const TraceSpan& span : spans_) {
    if (first || span.start_ns < epoch) epoch = span.start_ns;
    first = false;
  }
  return epoch;
}

std::string Trace::ToJson() const {
  const int64_t epoch = EpochNs();
  std::ostringstream out;
  out << "{\"stage_tasks\":" << stage_tasks()
      << ",\"barrier_tasks\":" << barrier_tasks() << ",\"spans\":[";
  for (size_t i = 0; i < spans_.size(); ++i) {
    const TraceSpan& span = spans_[i];
    if (i > 0) out << ',';
    out << "{\"id\":" << span.id << ",\"parent\":" << span.parent
        << ",\"name\":";
    AppendJsonString(&out, span.name);
    out << ",\"start_ns\":" << (span.start_ns - epoch)
        << ",\"duration_ns\":" << span.duration_ns
        << ",\"thread\":" << (span.thread_id & 0xffff);
    if (!span.annotations.empty()) {
      out << ",\"annotations\":{";
      for (size_t a = 0; a < span.annotations.size(); ++a) {
        const TraceAnnotation& ann = span.annotations[a];
        if (a > 0) out << ',';
        AppendJsonString(&out, ann.key);
        out << ':';
        if (ann.is_string) {
          AppendJsonString(&out, ann.str_value);
        } else {
          out << ann.int_value;
        }
      }
      out << '}';
    }
    out << '}';
  }
  out << "]}";
  return out.str();
}

std::string Trace::ToText() const {
  // Children in recording order under each parent, roots first — a stable
  // depth-first render independent of thread interleaving at merge time.
  std::vector<std::vector<uint32_t>> children(spans_.size() + 1);
  for (const TraceSpan& span : spans_) {
    SNOW_DCHECK_LT(span.parent, span.id);
    children[span.parent].push_back(span.id);
  }
  const int64_t epoch = EpochNs();
  std::ostringstream out;
  std::function<void(uint32_t, int)> render = [&](uint32_t id, int depth) {
    const TraceSpan& span = spans_[id - 1];
    for (int i = 0; i < depth; ++i) out << "  ";
    out << span.name << "  +"
        << (span.start_ns - epoch) / 1000 << "us "
        << span.duration_ns / 1000 << "us";
    for (const TraceAnnotation& ann : span.annotations) {
      out << ' ' << ann.key << '=';
      if (ann.is_string) {
        out << ann.str_value;
      } else {
        out << ann.int_value;
      }
    }
    out << '\n';
    for (uint32_t child : children[id]) render(child, depth + 1);
  };
  for (uint32_t root : children[0]) render(root, 0);
  return out.str();
}

}  // namespace snowprune
