#ifndef SNOWPRUNE_COMMON_CLOCK_H_
#define SNOWPRUNE_COMMON_CLOCK_H_

#include <chrono>

namespace snowprune {

/// Milliseconds between two steady-clock points, at nanosecond precision —
/// the one latency/wall-time conversion used engine- and service-wide.
inline double MsBetween(std::chrono::steady_clock::time_point t0,
                        std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
             .count() /
         1e6;
}

/// Milliseconds elapsed since `t0`.
inline double MsSince(std::chrono::steady_clock::time_point t0) {
  return MsBetween(t0, std::chrono::steady_clock::now());
}

/// Steady-clock now as nanoseconds since the clock's epoch. Per-query
/// deadlines are carried as absolute values on this timeline (0 = none), so
/// they survive handoff across queue, driver, engine, and shard threads
/// without re-basing.
inline int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// True iff `deadline_ns` names a deadline (non-zero) that has passed.
inline bool DeadlinePassed(int64_t deadline_ns) {
  return deadline_ns != 0 && SteadyNowNs() >= deadline_ns;
}

}  // namespace snowprune

#endif  // SNOWPRUNE_COMMON_CLOCK_H_
