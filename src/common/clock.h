#ifndef SNOWPRUNE_COMMON_CLOCK_H_
#define SNOWPRUNE_COMMON_CLOCK_H_

#include <chrono>

namespace snowprune {

/// Milliseconds between two steady-clock points, at nanosecond precision —
/// the one latency/wall-time conversion used engine- and service-wide.
inline double MsBetween(std::chrono::steady_clock::time_point t0,
                        std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
             .count() /
         1e6;
}

/// Milliseconds elapsed since `t0`.
inline double MsSince(std::chrono::steady_clock::time_point t0) {
  return MsBetween(t0, std::chrono::steady_clock::now());
}

}  // namespace snowprune

#endif  // SNOWPRUNE_COMMON_CLOCK_H_
