#ifndef SNOWPRUNE_COMMON_STATS_COLLECTOR_H_
#define SNOWPRUNE_COMMON_STATS_COLLECTOR_H_

#include <cstddef>
#include <string>
#include <vector>

namespace snowprune {

/// Accumulates samples and answers distribution queries (mean, percentiles,
/// CDF). The benchmark harnesses use it to print the same series the paper's
/// figures report (CDFs, box plots with mean markers, percentile tables).
class StatsCollector {
 public:
  void Add(double sample);
  void AddAll(const std::vector<double>& samples);

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Mean() const;
  double Min() const;
  double Max() const;
  /// Percentile in [0,100] by nearest-rank interpolation; requires !empty().
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  /// Fraction of samples <= x.
  double CdfAt(double x) const;

  const std::vector<double>& samples() const { return samples_; }

  /// "p0 p10 ... p100" style table row used by the figure harnesses.
  std::string PercentileRow(const std::vector<double>& ps) const;

  /// Renders one ASCII box-plot row (min/q1/median/q3/max plus a mean
  /// marker 'v'), matching the visual idiom of the paper's Figure 1/8.
  /// `lo`/`hi` define the axis range mapped onto `width` characters.
  std::string BoxPlotRow(double lo, double hi, int width) const;

  /// Prints "<x> <cdf>" pairs at `points` evenly spaced percentiles.
  void PrintCdf(const std::string& label, int points = 20) const;

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace snowprune

#endif  // SNOWPRUNE_COMMON_STATS_COLLECTOR_H_
