#ifndef SNOWPRUNE_COMMON_FAILPOINT_H_
#define SNOWPRUNE_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace snowprune {

/// Deterministic fault injection for testing every failure path.
///
/// A FailPoint is a named site planted at a boundary that can realistically
/// fail (partition load, pool dispatch, cache populate, shard scatter /
/// gather). Production code asks `ShouldFire()`; tests arm sites with a
/// policy and assert the error-handling path behaves (clean Status, retry,
/// no leak) — the same discipline as LevelDB/TiKV failpoints.
///
/// Disabled cost: one relaxed atomic load and a predictable branch — the
/// same shape as the null-trace fast path, which the traced-overhead CI
/// gate bounds at <5%. Sites are registered once through a function-local
/// static, so the registry mutex is off the hot path entirely.
///
/// Determinism: firing decisions hash a per-site arm sequence number with
/// splitmix64 (probability mode) or compare it directly (every-Nth /
/// once-after-K), so a single-threaded caller sees an exactly reproducible
/// fire pattern for a given (seed, policy), and concurrent callers see a
/// reproducible *multiset* of decisions regardless of interleaving.
class FailPoint {
 public:
  enum class Mode : uint8_t {
    kOff = 0,
    kProbability,  ///< Fire each evaluation independently with probability p.
    kEveryNth,     ///< Fire evaluations N, 2N, 3N, ... (1-based).
    kOnceAfterK,   ///< Pass K evaluations, fire the (K+1)-th, then stay off.
  };

  explicit FailPoint(std::string name);
  FailPoint(const FailPoint&) = delete;
  FailPoint& operator=(const FailPoint&) = delete;

  /// Hot-path check. False (no fault) in one relaxed load when disarmed.
  bool ShouldFire() {
    if (mode_.load(std::memory_order_relaxed) == Mode::kOff) return false;
    return ShouldFireSlow();
  }

  /// Arms this site; each Arm* resets the evaluation sequence and the
  /// per-site trip counter so tests meter "since armed". The registry-level
  /// metrics counters stay cumulative.
  void ArmProbability(double p, uint64_t seed = 42);
  void ArmEveryNth(uint64_t n);
  void ArmOnceAfterK(uint64_t k);
  void Disarm();

  const std::string& name() const { return name_; }
  Mode mode() const { return mode_.load(std::memory_order_relaxed); }
  /// Trips since this site was last armed.
  uint64_t trips() const { return trips_.load(std::memory_order_relaxed); }
  /// Evaluations (armed only) since this site was last armed.
  uint64_t evaluations() const {
    return seq_.load(std::memory_order_relaxed);
  }

 private:
  bool ShouldFireSlow();

  const std::string name_;
  std::atomic<Mode> mode_{Mode::kOff};
  std::atomic<uint64_t> seq_{0};    // armed evaluations, 1-based after inc
  std::atomic<uint64_t> trips_{0};  // fires since last armed
  std::atomic<uint64_t> param_{0};  // N for kEveryNth, K for kOnceAfterK
  // kProbability: bit pattern of p, compared against a [0,1) draw from
  // splitmix64(seed ^ n).
  std::atomic<uint64_t> threshold_{0};
  std::atomic<uint64_t> seed_{0};
};

/// Process-wide name → FailPoint registry. Registration is idempotent and
/// returns a pointer valid for the life of the process, so sites cache it
/// in a function-local static (see SNOW_FAILPOINT below).
class FailPointRegistry {
 public:
  static FailPointRegistry& Instance();

  /// Returns the site with `name`, creating it (disarmed) on first use.
  FailPoint* Register(const std::string& name) SNOW_EXCLUDES(mutex_);
  /// Returns the site or nullptr if it was never registered.
  FailPoint* Find(const std::string& name) SNOW_EXCLUDES(mutex_);
  /// Disarms every registered site (storm-test epilogue).
  void DisarmAll() SNOW_EXCLUDES(mutex_);
  /// Names of all registered sites, sorted.
  std::vector<std::string> Sites() SNOW_EXCLUDES(mutex_);
  /// Sum of per-site trips-since-armed across all sites.
  uint64_t TotalTrips() SNOW_EXCLUDES(mutex_);

 private:
  FailPointRegistry() = default;

  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<FailPoint>> sites_
      SNOW_GUARDED_BY(mutex_);
};

/// Evaluates the named site, registering it on first execution. Usage:
///
///   if (SNOW_FAILPOINT("scan.partition_load")) {
///     return InjectedFault("scan.partition_load");
///   }
#define SNOW_FAILPOINT(site_name)                                      \
  ([]() -> bool {                                                      \
    static ::snowprune::FailPoint* const fp =                          \
        ::snowprune::FailPointRegistry::Instance().Register(site_name); \
    return fp->ShouldFire();                                           \
  }())

/// The Status an armed site injects: kUnavailable, i.e. retryable — the
/// coordinator treats it like a transient shard fault.
Status InjectedFault(const std::string& site);

}  // namespace snowprune

#endif  // SNOWPRUNE_COMMON_FAILPOINT_H_
