#ifndef SNOWPRUNE_COMMON_METRICS_H_
#define SNOWPRUNE_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace snowprune {

/// Process-wide operational metrics — the always-on complement to the
/// per-query Trace. Three instrument kinds, all safe for concurrent
/// update from pool workers and driver threads:
///
///  - Counter: monotone, hot-path-friendly. Increments land on one of a
///    small set of cache-line-padded cells chosen per thread (round-robin
///    assignment at first touch), so concurrent workers never contend on
///    one line; Value() sums the cells.
///  - Gauge: a single last-writer-wins (or Add-accumulated) level, e.g. a
///    queue depth. A callback variant reads a process-global source at
///    snapshot time — only register callbacks whose target outlives the
///    process-lifetime registry (function statics, namespace globals).
///  - Histogram: fixed upper-bound buckets set at registration; Record()
///    is two relaxed fetch_adds plus a CAS-loop for the double sum.
///
/// All updates use relaxed atomics: metrics order nothing, they count.
/// SnapshotJson() is a point-in-time read — exact once writers are
/// quiescent, approximate (but never torn per-cell) while they run.

class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(int64_t delta = 1) {
    cells_[CellIndex()].v.fetch_add(delta, std::memory_order_relaxed);
  }

  int64_t Value() const {
    int64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  static constexpr size_t kCells = 16;
  struct alignas(64) Cell {
    std::atomic<int64_t> v{0};
  };

  static size_t CellIndex();

  Cell cells_[kCells];
};

class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Histogram {
 public:
  /// `bounds` are the inclusive upper edges of the finite buckets, strictly
  /// ascending; an implicit +Inf bucket catches the rest.
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(double sample);

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; index bounds_.size() is +Inf.
  std::vector<int64_t> BucketCounts() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Name → instrument registry. Get* registers on first use and returns a
/// pointer that stays valid for the life of the process, so hot call sites
/// cache it in a function-local static and never re-take the registry
/// mutex. Re-registering a histogram under the same name must pass the
/// same bounds (checked in debug builds).
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  Counter* GetCounter(const std::string& name) SNOW_EXCLUDES(mutex_);
  Gauge* GetGauge(const std::string& name) SNOW_EXCLUDES(mutex_);
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds) SNOW_EXCLUDES(mutex_);
  /// Snapshot-time gauge whose value is computed by `fn`. The callback must
  /// stay callable forever (the registry is never destroyed before exit) —
  /// capture only process-global state.
  void RegisterCallbackGauge(const std::string& name,
                             std::function<int64_t()> fn)
      SNOW_EXCLUDES(mutex_);

  /// {"counters":{...},"gauges":{...},"histograms":{name:{"count":c,
  /// "sum":s,"buckets":[{"le":b,"count":n},...,{"le":"+Inf","count":n}]}}}
  /// Bucket counts are per-bucket (non-cumulative) and sum to "count".
  std::string SnapshotJson() SNOW_EXCLUDES(mutex_);

 private:
  MetricsRegistry() = default;

  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      SNOW_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      SNOW_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      SNOW_GUARDED_BY(mutex_);
  std::map<std::string, std::function<int64_t()>> callback_gauges_
      SNOW_GUARDED_BY(mutex_);
};

}  // namespace snowprune

#endif  // SNOWPRUNE_COMMON_METRICS_H_
