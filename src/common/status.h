#ifndef SNOWPRUNE_COMMON_STATUS_H_
#define SNOWPRUNE_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace snowprune {

/// Error codes for fallible public APIs. The library does not throw across
/// its API boundary; operations that can fail return Status (or Result<T>).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,  ///< Admission rejection: a bounded queue is full.
  kUnavailable,        ///< The serving component is shutting down, or a
                       ///< transient (possibly injected) fault occurred.
  kCancelled,          ///< The caller cancelled the operation mid-flight.
  kDeadlineExceeded,   ///< The per-query deadline passed before completion.
};

/// True for transient failures worth retrying against an unchanged snapshot
/// (shard sub-query faults, momentary resource exhaustion). Deterministic
/// errors — bad plans, internal invariant breaks, cancellation, expired
/// deadlines — are terminal: retrying cannot change the outcome.
inline bool IsRetryable(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kResourceExhausted;
}

/// A lightweight success-or-error carrier, modeled after the Status idiom
/// used by Arrow and Google C++ codebases.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad column".
  std::string ToString() const {
    if (ok()) return "OK";
    const char* name = "Unknown";
    switch (code_) {
      case StatusCode::kOk: name = "OK"; break;
      case StatusCode::kInvalidArgument: name = "InvalidArgument"; break;
      case StatusCode::kNotFound: name = "NotFound"; break;
      case StatusCode::kOutOfRange: name = "OutOfRange"; break;
      case StatusCode::kUnimplemented: name = "Unimplemented"; break;
      case StatusCode::kInternal: name = "Internal"; break;
      case StatusCode::kResourceExhausted:
        name = "ResourceExhausted";
        break;
      case StatusCode::kUnavailable: name = "Unavailable"; break;
      case StatusCode::kCancelled: name = "Cancelled"; break;
      case StatusCode::kDeadlineExceeded: name = "DeadlineExceeded"; break;
    }
    return std::string(name) + ": " + message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error carrier for fallible factory-style APIs.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

 private:
  Status status_;
  T value_{};
};

}  // namespace snowprune

#endif  // SNOWPRUNE_COMMON_STATUS_H_
