#include "common/failpoint.h"

#include <cstring>

#include "common/metrics.h"

namespace snowprune {

namespace {

// Same mixer that seeds the repo's xoshiro Rng: full-avalanche over the
// 64-bit input, so consecutive sequence numbers map to independent-looking
// draws without any per-site lock or RNG state.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Counter* TripCounter() {
  static Counter* const c =
      MetricsRegistry::Instance().GetCounter("failpoint.trips");
  return c;
}

}  // namespace

FailPoint::FailPoint(std::string name) : name_(std::move(name)) {}

void FailPoint::ArmProbability(double p, uint64_t seed) {
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  uint64_t p_bits = 0;
  std::memcpy(&p_bits, &p, sizeof(p_bits));
  seed_.store(seed, std::memory_order_relaxed);
  threshold_.store(p_bits, std::memory_order_relaxed);
  seq_.store(0, std::memory_order_relaxed);
  trips_.store(0, std::memory_order_relaxed);
  mode_.store(Mode::kProbability, std::memory_order_release);
}

void FailPoint::ArmEveryNth(uint64_t n) {
  if (n == 0) n = 1;
  param_.store(n, std::memory_order_relaxed);
  seq_.store(0, std::memory_order_relaxed);
  trips_.store(0, std::memory_order_relaxed);
  mode_.store(Mode::kEveryNth, std::memory_order_release);
}

void FailPoint::ArmOnceAfterK(uint64_t k) {
  param_.store(k, std::memory_order_relaxed);
  seq_.store(0, std::memory_order_relaxed);
  trips_.store(0, std::memory_order_relaxed);
  mode_.store(Mode::kOnceAfterK, std::memory_order_release);
}

void FailPoint::Disarm() { mode_.store(Mode::kOff, std::memory_order_release); }

bool FailPoint::ShouldFireSlow() {
  // Re-load the mode: a concurrent Disarm between the fast-path check and
  // here just means we evaluate one extra time, which is fine — but the
  // decision must be made against one coherent mode value.
  const Mode mode = mode_.load(std::memory_order_acquire);
  if (mode == Mode::kOff) return false;
  const uint64_t n = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  bool fire = false;
  switch (mode) {
    case Mode::kOff:
      break;
    case Mode::kProbability: {
      const uint64_t h =
          SplitMix64(seed_.load(std::memory_order_relaxed) ^ n);
      // Top 53 bits → uniform double in [0, 1); fire iff below p. p == 1.0
      // always fires, p == 0.0 never does.
      const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
      const uint64_t p_bits = threshold_.load(std::memory_order_relaxed);
      double p = 0.0;
      std::memcpy(&p, &p_bits, sizeof(p));
      fire = u < p;
      break;
    }
    case Mode::kEveryNth:
      fire = n % param_.load(std::memory_order_relaxed) == 0;
      break;
    case Mode::kOnceAfterK:
      fire = n == param_.load(std::memory_order_relaxed) + 1;
      break;
  }
  if (fire) {
    trips_.fetch_add(1, std::memory_order_relaxed);
    TripCounter()->Add(1);
  }
  return fire;
}

FailPointRegistry& FailPointRegistry::Instance() {
  static FailPointRegistry* const instance = new FailPointRegistry();
  return *instance;
}

FailPoint* FailPointRegistry::Register(const std::string& name) {
  MutexLock lock(&mutex_);
  auto it = sites_.find(name);
  if (it == sites_.end()) {
    it = sites_.emplace(name, std::make_unique<FailPoint>(name)).first;
  }
  return it->second.get();
}

FailPoint* FailPointRegistry::Find(const std::string& name) {
  MutexLock lock(&mutex_);
  auto it = sites_.find(name);
  return it == sites_.end() ? nullptr : it->second.get();
}

void FailPointRegistry::DisarmAll() {
  MutexLock lock(&mutex_);
  for (auto& entry : sites_) entry.second->Disarm();
}

std::vector<std::string> FailPointRegistry::Sites() {
  MutexLock lock(&mutex_);
  std::vector<std::string> names;
  names.reserve(sites_.size());
  for (const auto& entry : sites_) names.push_back(entry.first);
  return names;
}

uint64_t FailPointRegistry::TotalTrips() {
  MutexLock lock(&mutex_);
  uint64_t total = 0;
  for (const auto& entry : sites_) total += entry.second->trips();
  return total;
}

Status InjectedFault(const std::string& site) {
  return Status::Unavailable("injected fault at failpoint " + site);
}

}  // namespace snowprune
