#ifndef SNOWPRUNE_COMMON_INTERVAL_H_
#define SNOWPRUNE_COMMON_INTERVAL_H_

#include <optional>
#include <string>

#include "common/tribool.h"
#include "common/value.h"

namespace snowprune {

/// Comparison operators usable in pruning predicates.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* ToString(CompareOp op);
CompareOp Invert(CompareOp op);   ///< Logical negation: Eq<->Ne, Lt<->Ge, ...
CompareOp Mirror(CompareOp op);   ///< Operand swap: Lt<->Gt, Le<->Ge, Eq/Ne fixed.

/// A conservative closed interval over the values an expression can take
/// within one micro-partition, derived from zone-map metadata (§3.1 of the
/// paper: "every function must provide a mechanism to derive transformed
/// min/max ranges from its input").
///
/// Invariants: when lo and hi are both present they are comparable and
/// lo <= hi. A missing bound means "unknown in that direction". `all_null`
/// means the expression is NULL on every row (bounds are then meaningless).
/// Arithmetic on intervals is *widening*: floating-point results are nudged
/// outward one ULP so the derived range can never under-cover the true range.
struct Interval {
  std::optional<Value> lo;
  std::optional<Value> hi;
  bool maybe_null = false;
  bool all_null = false;

  /// Completely unknown range (unbounded, possibly NULL).
  static Interval Unknown();
  /// A single known constant. NULL constants produce an all_null interval.
  static Interval Point(const Value& v);
  /// Closed range [lo, hi]; `maybe_null` if the source column has NULLs.
  static Interval Range(Value lo, Value hi, bool maybe_null);
  /// The range of an expression known to be NULL on every row.
  static Interval AllNull();

  /// True when the interval pins a single non-null value for every row.
  bool IsConstant() const {
    return !all_null && !maybe_null && lo.has_value() && hi.has_value() &&
           Value::Compare(*lo, *hi) == 0;
  }

  std::string ToString() const;
};

/// Convex hull of two intervals (used for IF/CASE where the branch cannot be
/// decided from metadata: the result range must cover both branches).
Interval Union(const Interval& a, const Interval& b);

/// Interval arithmetic. Mixed int64/float64 operands are computed in double
/// with outward widening; pure-int64 add/sub/mul stays exact unless it would
/// overflow, in which case it degrades to a widened double bound.
Interval Add(const Interval& a, const Interval& b);
Interval Sub(const Interval& a, const Interval& b);
Interval Mul(const Interval& a, const Interval& b);
/// Division is conservative: if the divisor range may touch zero the result
/// is unbounded.
Interval Div(const Interval& a, const Interval& b);
Interval Negate(const Interval& a);

/// Evaluates `a op b` over all (row-wise) combinations drawn from the two
/// intervals, in Kleene logic:
///   kTrue  -> every non-null pair satisfies op and neither side can be NULL,
///   kFalse -> no pair satisfies op (NULLs never satisfy a comparison),
///   kMaybe -> undecidable from the ranges.
TriBool CompareIntervals(const Interval& a, CompareOp op, const Interval& b);

}  // namespace snowprune

#endif  // SNOWPRUNE_COMMON_INTERVAL_H_
