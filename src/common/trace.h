#ifndef SNOWPRUNE_COMMON_TRACE_H_
#define SNOWPRUNE_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace snowprune {

/// Per-query tracing — the paper's "per query, which level pruned what,
/// where did the time go" telemetry (§7 / Figure 1) as a tree of spans.
///
/// Ownership and threading model, chosen so untraced queries pay nothing
/// and traced queries add no locks to the hot path:
///
///  - A Trace is owned by one query and mutated only by its consumer
///    thread (the driver running the operator loop). Every instrumented
///    site starts with `if (trace == nullptr)` — the untraced fast path is
///    a predictable not-taken branch on a pointer that is almost always
///    null.
///  - Pool workers never touch the Trace. A worker records its morsel
///    spans into a SpanBuffer that travels inside the morsel result; the
///    consumer merges the buffer when it receives the morsel, re-basing
///    span ids and parents. The scheduler's existing hand-off
///    synchronization is the only ordering needed.
///  - The sole cross-thread members are the per-query stage/barrier task
///    counters (relaxed atomics) — the query-scoped version of the
///    process-wide PipelineCounters.
///
/// Timestamps are absolute steady-clock nanoseconds (one clock per
/// process), so spans recorded by shard sub-engines or pool workers align
/// with the parent trace without translation; renderers subtract the
/// trace's earliest start.

int64_t TraceNowNs();

struct TraceAnnotation {
  std::string key;
  int64_t int_value = 0;
  std::string str_value;
  bool is_string = false;
};

struct TraceSpan {
  uint32_t id = 0;      ///< 1-based within its Trace; 0 is "no span".
  uint32_t parent = 0;  ///< 0 = root of the trace.
  std::string name;
  int64_t start_ns = 0;     ///< Absolute steady-clock ns.
  int64_t duration_ns = 0;  ///< 0 while the span is open.
  uint64_t thread_id = 0;   ///< Hash of the recording thread's id.
  std::vector<TraceAnnotation> annotations;
};

/// A worker-local run of spans with buffer-local ids, recorded without any
/// synchronization and merged into the owning Trace by the consumer.
class SpanBuffer {
 public:
  uint32_t Begin(const char* name, uint32_t parent = 0);
  void End(uint32_t id);
  void AnnotateInt(uint32_t id, const char* key, int64_t value);

  bool empty() const { return spans_.empty(); }
  std::vector<TraceSpan>& spans() { return spans_; }
  const std::vector<TraceSpan>& spans() const { return spans_; }
  void clear() { spans_.clear(); }

 private:
  std::vector<TraceSpan> spans_;
};

class Trace {
 public:
  Trace() = default;
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// Opens a span; returns its id (use as `parent` for children and for
  /// EndSpan). Consumer thread only.
  uint32_t BeginSpan(const std::string& name, uint32_t parent = 0);
  void EndSpan(uint32_t id);
  void AnnotateInt(uint32_t id, const std::string& key, int64_t value);
  void AnnotateStr(uint32_t id, const std::string& key, std::string value);

  /// Splices a worker's buffer under `parent_id`, re-basing the buffer's
  /// local ids. Consumer thread only; the buffer is consumed.
  void MergeBuffer(SpanBuffer* buffer, uint32_t parent_id);
  /// Splices a completed child trace (e.g. one shard sub-query) under
  /// `parent_id`. Timestamps need no adjustment — same process clock. The
  /// child's stage/barrier counters are folded in too.
  void MergeChildTrace(Trace* child, uint32_t parent_id);

  const std::vector<TraceSpan>& spans() const { return spans_; }

  /// Per-query pipeline-task counters — the only Trace members workers
  /// update (relaxed; they count, they order nothing).
  void IncStageTasks() { stage_tasks_.fetch_add(1, std::memory_order_relaxed); }
  void IncBarrierTasks(int64_t n) {
    barrier_tasks_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t stage_tasks() const {
    return stage_tasks_.load(std::memory_order_relaxed);
  }
  int64_t barrier_tasks() const {
    return barrier_tasks_.load(std::memory_order_relaxed);
  }

  /// Earliest span start, or 0 for an empty trace — the render epoch.
  int64_t EpochNs() const;

  std::string ToJson() const;
  /// Indented tree, children in recording order, times relative to epoch.
  std::string ToText() const;

 private:
  std::vector<TraceSpan> spans_;
  std::atomic<int64_t> stage_tasks_{0};
  std::atomic<int64_t> barrier_tasks_{0};
};

/// RAII span over a possibly-null trace: with `trace == nullptr` the whole
/// object is two pointer-sized no-ops.
class ScopedSpan {
 public:
  ScopedSpan(Trace* trace, const char* name, uint32_t parent = 0)
      : trace_(trace) {
    if (trace_ != nullptr) id_ = trace_->BeginSpan(name, parent);
  }
  ~ScopedSpan() {
    if (trace_ != nullptr) trace_->EndSpan(id_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// 0 when untraced — safe to pass straight through as a parent id.
  uint32_t id() const { return id_; }
  void AnnotateInt(const char* key, int64_t value) {
    if (trace_ != nullptr) trace_->AnnotateInt(id_, key, value);
  }

 private:
  Trace* trace_;
  uint32_t id_ = 0;
};

}  // namespace snowprune

#endif  // SNOWPRUNE_COMMON_TRACE_H_
