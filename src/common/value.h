#ifndef SNOWPRUNE_COMMON_VALUE_H_
#define SNOWPRUNE_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace snowprune {

/// Physical data types supported by the engine. Dates are stored as kInt64
/// (days since epoch); the engine's pruning math only needs a total order
/// plus numeric arithmetic, so a dedicated date type would add no behaviour.
enum class DataType { kBool, kInt64, kFloat64, kString };

const char* ToString(DataType t);

/// A dynamically-typed SQL value (possibly NULL). Used at API boundaries,
/// in zone-map metadata, and by the scalar evaluator; columnar storage keeps
/// values unboxed.
class Value {
 public:
  /// Constructs a NULL value.
  Value() : data_(std::monostate{}) {}
  explicit Value(bool b) : data_(b) {}
  explicit Value(int64_t i) : data_(i) {}
  explicit Value(int i) : data_(static_cast<int64_t>(i)) {}
  explicit Value(double d) : data_(d) {}
  explicit Value(std::string s) : data_(std::move(s)) {}
  explicit Value(const char* s) : data_(std::string(s)) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(data_); }
  bool is_float64() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_numeric() const { return is_int64() || is_float64(); }

  bool bool_value() const { return std::get<bool>(data_); }
  int64_t int64_value() const { return std::get<int64_t>(data_); }
  double float64_value() const { return std::get<double>(data_); }
  const std::string& string_value() const { return std::get<std::string>(data_); }

  /// Numeric content as double; requires is_numeric().
  double AsDouble() const {
    return is_int64() ? static_cast<double>(int64_value()) : float64_value();
  }

  /// The value's data type; requires !is_null().
  DataType type() const;

  /// Three-way comparison. NULL values and cross-kind comparisons (string vs
  /// numeric) are the caller's responsibility; int64 and float64 compare
  /// numerically. Returns <0, 0, >0.
  static int Compare(const Value& a, const Value& b);

  /// True when both are non-null and Compare(a,b)==0, or both NULL.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  std::string ToString() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> data_;
};

/// Stable 64-bit hash used by hash joins and Bloom summaries. Numeric values
/// hash by canonical double bits when fractional, by integer value otherwise,
/// so Value(2) and Value(2.0) collide as equality demands.
uint64_t HashValue(const Value& v);

/// Component hashes of HashValue, one per physical type. HashValue
/// dispatches to these, and the columnar (unboxed) join path calls them
/// directly on raw column cells — the two can therefore never disagree.
uint64_t HashBoolValue(bool b);
uint64_t HashInt64Value(int64_t v);
uint64_t HashFloat64Value(double d);
uint64_t HashStringValue(const std::string& s);

}  // namespace snowprune

#endif  // SNOWPRUNE_COMMON_VALUE_H_
