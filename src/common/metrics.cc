#include "common/metrics.h"

#include <sstream>

#include "common/check.h"

namespace snowprune {

size_t Counter::CellIndex() {
  static std::atomic<size_t> next_cell{0};
  thread_local size_t cell =
      next_cell.fetch_add(1, std::memory_order_relaxed) % kCells;
  return cell;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    SNOW_DCHECK_LT(bounds_[i - 1], bounds_[i]);
  }
}

void Histogram::Record(double sample) {
  size_t i = 0;
  while (i < bounds_.size() && sample > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + sample,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    out.push_back(b.load(std::memory_order_relaxed));
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Instance() {
  // Leaked on purpose: instrument pointers handed out by Get* must stay
  // valid during static destruction of late-dying threads.
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  MutexLock lock(&mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  } else {
    SNOW_DCHECK_EQ(slot->bounds().size(), bounds.size());
  }
  return slot.get();
}

void MetricsRegistry::RegisterCallbackGauge(const std::string& name,
                                            std::function<int64_t()> fn) {
  MutexLock lock(&mutex_);
  callback_gauges_[name] = std::move(fn);
}

namespace {

void AppendJsonString(std::ostringstream* out, const std::string& s) {
  *out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') *out << '\\';
    *out << c;
  }
  *out << '"';
}

}  // namespace

std::string MetricsRegistry::SnapshotJson() {
  MutexLock lock(&mutex_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out << ',';
    first = false;
    AppendJsonString(&out, name);
    out << ':' << counter->Value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out << ',';
    first = false;
    AppendJsonString(&out, name);
    out << ':' << gauge->Value();
  }
  for (const auto& [name, fn] : callback_gauges_) {
    if (!first) out << ',';
    first = false;
    AppendJsonString(&out, name);
    out << ':' << fn();
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) out << ',';
    first = false;
    AppendJsonString(&out, name);
    out << ":{\"count\":" << hist->Count() << ",\"sum\":" << hist->Sum()
        << ",\"buckets\":[";
    const std::vector<int64_t> counts = hist->BucketCounts();
    const std::vector<double>& bounds = hist->bounds();
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out << ',';
      out << "{\"le\":";
      if (i < bounds.size()) {
        out << bounds[i];
      } else {
        out << "\"+Inf\"";
      }
      out << ",\"count\":" << counts[i] << '}';
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

}  // namespace snowprune
