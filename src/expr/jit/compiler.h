#ifndef SNOWPRUNE_EXPR_JIT_COMPILER_H_
#define SNOWPRUNE_EXPR_JIT_COMPILER_H_

#include <memory>

#include "expr/jit/bytecode.h"
#include "storage/schema.h"

namespace snowprune {
namespace jit {

struct CompileResult {
  /// Null when the predicate was rejected whole (see reason); the caller
  /// keeps the interpreter path and no program is installed.
  std::shared_ptr<CompiledPredicate> program;
  RejectReason reason = RejectReason::kNone;
  /// Number of per-term interpreter fallbacks embedded in the program.
  int fallback_terms = 0;
};

/// Compiles a bound predicate into a selection-producing bytecode program.
/// Never wrong, sometimes absent: unsupported subtrees become per-term
/// kFallback instructions driving the vectorized interpreter, and a
/// predicate with no natively-compilable structure at all is rejected
/// (program == nullptr) rather than wrapped. Counts jit.compiles /
/// jit.fallbacks.
CompileResult CompilePredicate(const ExprPtr& expr, const Schema& schema);

/// Compiles a bound numeric value expression (projection kernel) into a
/// program whose root lane register holds the result. Rejected whole if any
/// subtree is outside the typed-lane model (value programs have no
/// interpreter fallback instruction).
CompileResult CompileValueProgram(const ExprPtr& expr, const Schema& schema);

}  // namespace jit
}  // namespace snowprune

#endif  // SNOWPRUNE_EXPR_JIT_COMPILER_H_
