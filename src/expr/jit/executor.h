#ifndef SNOWPRUNE_EXPR_JIT_EXECUTOR_H_
#define SNOWPRUNE_EXPR_JIT_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "expr/evaluator.h"
#include "expr/jit/bytecode.h"
#include "storage/partition.h"

namespace snowprune {
namespace jit {

/// Runs a compiled predicate program over one micro-partition, filling
/// `selection` (replacing its contents) with the matching physical row
/// indexes in ascending order — byte-identical to ComputeSelection on the
/// same predicate. Registers live in `scratch`'s pooled buffers (shared
/// with the interpreter; per-term kFallback instructions nest cleanly).
/// Returns false without touching `selection`'s semantics when the program
/// cannot run against this batch (column index/type drift); the caller
/// falls back to ComputeSelection. Counts jit.hits on success.
bool ExecuteSelection(const CompiledPredicate& program,
                      const MicroPartition& partition,
                      std::vector<uint32_t>* selection, EvalScratch* scratch);

/// Runs a compiled value program (projection kernel), materializing the
/// root register into `out` with NumericLanes semantics identical to the
/// interpreter's typed-lane evaluation. Same validation contract as
/// ExecuteSelection.
bool ExecuteValue(const CompiledPredicate& program,
                  const MicroPartition& partition, NumericLanes* out,
                  EvalScratch* scratch);

}  // namespace jit
}  // namespace snowprune

#endif  // SNOWPRUNE_EXPR_JIT_EXECUTOR_H_
