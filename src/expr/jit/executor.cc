/// Fused dispatch loop for compiled predicate/projection programs. Every
/// instruction runs full-width over the batch in a tight typed loop;
/// byte-identity with the selection-aware interpreter holds because every
/// kernel is pure per-row and the connective merges are monotone (a decided
/// row never changes), so evaluating extra rows cannot change any outcome.
/// Short-circuiting is preserved at batch granularity: connective merges
/// jump past the remaining term computations once every row is decided, and
/// a native root comparison chain writes the selection vector directly.
///
/// Exactness contract: the per-row semantics here mirror the interpreter's
/// kernels in evaluator.cc operation by operation — int64 arithmetic with
/// __builtin overflow fallback to double, division by zero -> NULL, NaN
/// comparing "equal" to everything (x<y ? -1 : (x>y ? 1 : 0)), IN-list
/// cmp_equal over doubles. The fast uniform-type loops escape to the
/// generic per-row cell on the first special row (overflow, zero divisor)
/// and continue in a single pass.
#include "expr/jit/executor.h"

#include <algorithm>

#include "common/metrics.h"

namespace snowprune {
namespace jit {
namespace {

/// Dynamic representation of a lane register: most programs never
/// materialize per-row kind tags — literals stay scalars, null-free columns
/// alias storage, and all-int64/all-double arithmetic results keep a
/// uniform tag.
enum LaneRep : uint8_t {
  kRepEmpty = 0,     ///< Never written (defensive: reads as all-NULL).
  kRepScalarNull,    ///< Uniform NULL.
  kRepScalarI64,     ///< One int64 for every row.
  kRepScalarF64,     ///< One double for every row.
  kRepAliasI64,      ///< Aliases a null-free int64 column (no copy).
  kRepAliasF64,      ///< Aliases a null-free float64 column.
  kRepLanes,         ///< Full NumericLanes with per-row kind tags.
  kRepAllI64,        ///< Lanes storage, every row kLaneInt64.
  kRepAllF64,        ///< Lanes storage, every row kLaneDouble.
};

struct LaneReg {
  uint8_t rep = kRepEmpty;
  int64_t si = 0;
  double sf = 0.0;
  const int64_t* ai = nullptr;
  const double* af = nullptr;
  NumericLanes* lanes = nullptr;  ///< Pooled backing storage for this reg.
};

/// Normalized read view over a lane register: null pointers select the
/// uniform kind / scalar value, so the generic per-row cells read any
/// representation through one accessor triple.
struct View {
  const uint8_t* kind = nullptr;
  uint8_t ukind = kLaneNull;
  const int64_t* i = nullptr;
  const double* f = nullptr;
  int64_t si = 0;
  double sf = 0.0;

  bool uniform() const { return kind == nullptr; }
  uint8_t K(uint32_t r) const { return kind != nullptr ? kind[r] : ukind; }
  int64_t I(uint32_t r) const { return i != nullptr ? i[r] : si; }
  double D(uint32_t r) const { return f != nullptr ? f[r] : sf; }
};

View Resolve(const LaneReg& reg) {
  View v;
  switch (reg.rep) {
    case kRepEmpty:
    case kRepScalarNull:
      v.ukind = kLaneNull;
      break;
    case kRepScalarI64:
      v.ukind = kLaneInt64;
      v.si = reg.si;
      break;
    case kRepScalarF64:
      v.ukind = kLaneDouble;
      v.sf = reg.sf;
      break;
    case kRepAliasI64:
      v.ukind = kLaneInt64;
      v.i = reg.ai;
      break;
    case kRepAliasF64:
      v.ukind = kLaneDouble;
      v.f = reg.af;
      break;
    case kRepAllI64:
      v.ukind = kLaneInt64;
      v.i = reg.lanes->i64.data();
      break;
    case kRepAllF64:
      v.ukind = kLaneDouble;
      v.f = reg.lanes->f64.data();
      break;
    case kRepLanes:
      v.kind = reg.lanes->kind.data();
      v.i = reg.lanes->i64.data();
      v.f = reg.lanes->f64.data();
      break;
  }
  return v;
}

/// Row r as a double; only valid when K(r) != kLaneNull.
inline double AsD(const View& v, uint32_t r) {
  return v.K(r) == kLaneInt64 ? static_cast<double>(v.I(r)) : v.D(r);
}

// Mirrors of the interpreter's comparison primitives (evaluator.cc).
inline int CmpI(int64_t x, int64_t y) { return x < y ? -1 : (x > y ? 1 : 0); }
inline int CmpD(double x, double y) { return x < y ? -1 : (x > y ? 1 : 0); }

inline uint8_t ApplyOne(CompareOp op, int c) {
  switch (op) {
    case CompareOp::kEq: return c == 0 ? kPredTrue : kPredFalse;
    case CompareOp::kNe: return c != 0 ? kPredTrue : kPredFalse;
    case CompareOp::kLt: return c < 0 ? kPredTrue : kPredFalse;
    case CompareOp::kLe: return c <= 0 ? kPredTrue : kPredFalse;
    case CompareOp::kGt: return c > 0 ? kPredTrue : kPredFalse;
    case CompareOp::kGe: return c >= 0 ? kPredTrue : kPredFalse;
  }
  return kPredFalse;
}

/// Generic per-row arithmetic cell — the exact ArithCell semantics from the
/// interpreter, reading through views. Reads of row r complete before any
/// write to row r, so a destination register reusing an operand's storage
/// stays correct.
inline void ArithCellView(ArithOp op, const View& l, const View& r,
                          uint32_t row, NumericLanes* out) {
  const uint8_t lk = l.K(row), rk = r.K(row);
  if (lk == kLaneNull || rk == kLaneNull) {
    out->kind[row] = kLaneNull;
    return;
  }
  const bool both_int = lk == kLaneInt64 && rk == kLaneInt64;
  const int64_t li = l.I(row), ri = r.I(row);
  const double ld = lk == kLaneInt64 ? static_cast<double>(li) : l.D(row);
  const double rd = rk == kLaneInt64 ? static_cast<double>(ri) : r.D(row);
  switch (op) {
    case ArithOp::kAdd: {
      int64_t v;
      if (both_int && !__builtin_add_overflow(li, ri, &v)) {
        out->kind[row] = kLaneInt64;
        out->i64[row] = v;
        return;
      }
      out->kind[row] = kLaneDouble;
      out->f64[row] = ld + rd;
      return;
    }
    case ArithOp::kSub: {
      int64_t v;
      if (both_int && !__builtin_sub_overflow(li, ri, &v)) {
        out->kind[row] = kLaneInt64;
        out->i64[row] = v;
        return;
      }
      out->kind[row] = kLaneDouble;
      out->f64[row] = ld - rd;
      return;
    }
    case ArithOp::kMul: {
      int64_t v;
      if (both_int && !__builtin_mul_overflow(li, ri, &v)) {
        out->kind[row] = kLaneInt64;
        out->i64[row] = v;
        return;
      }
      out->kind[row] = kLaneDouble;
      out->f64[row] = ld * rd;
      return;
    }
    case ArithOp::kDiv: {
      if (rd == 0.0) {
        out->kind[row] = kLaneNull;
        return;
      }
      out->kind[row] = kLaneDouble;
      out->f64[row] = ld / rd;
      return;
    }
  }
  out->kind[row] = kLaneNull;
}

void ExecArith(ArithOp op, const View& a, const View& b, LaneReg* dst,
               size_t n) {
  if ((a.uniform() && a.ukind == kLaneNull) ||
      (b.uniform() && b.ukind == kLaneNull)) {
    dst->rep = kRepScalarNull;
    return;
  }
  NumericLanes& out = *dst->lanes;
  if (a.uniform() && b.uniform()) {
    if (op != ArithOp::kDiv && a.ukind == kLaneInt64 &&
        b.ukind == kLaneInt64) {
      // Both-int fast loop; escape to the generic cell on first overflow.
      int64_t* oi = out.i64.data();
      uint32_t r = 0;
      bool escaped = false;
      switch (op) {
        case ArithOp::kAdd:
          for (; r < n; ++r) {
            int64_t v;
            if (__builtin_add_overflow(a.I(r), b.I(r), &v)) {
              escaped = true;
              break;
            }
            oi[r] = v;
          }
          break;
        case ArithOp::kSub:
          for (; r < n; ++r) {
            int64_t v;
            if (__builtin_sub_overflow(a.I(r), b.I(r), &v)) {
              escaped = true;
              break;
            }
            oi[r] = v;
          }
          break;
        case ArithOp::kMul:
          for (; r < n; ++r) {
            int64_t v;
            if (__builtin_mul_overflow(a.I(r), b.I(r), &v)) {
              escaped = true;
              break;
            }
            oi[r] = v;
          }
          break;
        case ArithOp::kDiv:
          break;
      }
      if (!escaped) {
        dst->rep = kRepAllI64;
        return;
      }
      std::fill(out.kind.begin(), out.kind.begin() + r, uint8_t{kLaneInt64});
      for (; r < n; ++r) ArithCellView(op, a, b, r, &out);
      dst->rep = kRepLanes;
      return;
    }
    if (op != ArithOp::kDiv) {
      // At least one double operand, neither NULL: the result is pure
      // double for every row (the interpreter's !both_int branch).
      double* of = out.f64.data();
      switch (op) {
        case ArithOp::kAdd:
          for (uint32_t r = 0; r < n; ++r) of[r] = AsD(a, r) + AsD(b, r);
          break;
        case ArithOp::kSub:
          for (uint32_t r = 0; r < n; ++r) of[r] = AsD(a, r) - AsD(b, r);
          break;
        case ArithOp::kMul:
          for (uint32_t r = 0; r < n; ++r) of[r] = AsD(a, r) * AsD(b, r);
          break;
        case ArithOp::kDiv:
          break;
      }
      dst->rep = kRepAllF64;
      return;
    }
    // Division over uniform non-NULL operands: pure double until the first
    // zero divisor (-> per-row cell, which yields NULL there).
    double* of = out.f64.data();
    uint32_t r = 0;
    bool escaped = false;
    for (; r < n; ++r) {
      const double rd = AsD(b, r);
      if (rd == 0.0) {
        escaped = true;
        break;
      }
      of[r] = AsD(a, r) / rd;
    }
    if (!escaped) {
      dst->rep = kRepAllF64;
      return;
    }
    std::fill(out.kind.begin(), out.kind.begin() + r, uint8_t{kLaneDouble});
    for (; r < n; ++r) ArithCellView(op, a, b, r, &out);
    dst->rep = kRepLanes;
    return;
  }
  for (uint32_t r = 0; r < n; ++r) ArithCellView(op, a, b, r, &out);
  dst->rep = kRepLanes;
}

/// Generic per-row comparison cell (CompareMask's lanes path).
inline uint8_t CmpCell(CompareOp op, const View& a, const View& b,
                       uint32_t r) {
  const uint8_t lk = a.K(r), rk = b.K(r);
  if (lk == kLaneNull || rk == kLaneNull) return kPredNull;
  if (lk == kLaneInt64 && rk == kLaneInt64) {
    return ApplyOne(op, CmpI(a.I(r), b.I(r)));
  }
  return ApplyOne(op, CmpD(lk == kLaneInt64 ? static_cast<double>(a.I(r))
                                            : a.D(r),
                           rk == kLaneInt64 ? static_cast<double>(b.I(r))
                                            : b.D(r)));
}

void ExecCmp(CompareOp op, const View& a, const View& b, uint8_t* m,
             size_t n) {
  if ((a.uniform() && a.ukind == kLaneNull) ||
      (b.uniform() && b.ukind == kLaneNull)) {
    std::fill(m, m + n, uint8_t{kPredNull});
    return;
  }
  if (a.uniform() && b.uniform()) {
    if (a.ukind == kLaneInt64 && b.ukind == kLaneInt64) {
      switch (op) {
        case CompareOp::kEq:
          for (uint32_t r = 0; r < n; ++r) {
            m[r] = a.I(r) == b.I(r) ? kPredTrue : kPredFalse;
          }
          return;
        case CompareOp::kNe:
          for (uint32_t r = 0; r < n; ++r) {
            m[r] = a.I(r) != b.I(r) ? kPredTrue : kPredFalse;
          }
          return;
        case CompareOp::kLt:
          for (uint32_t r = 0; r < n; ++r) {
            m[r] = a.I(r) < b.I(r) ? kPredTrue : kPredFalse;
          }
          return;
        case CompareOp::kLe:
          for (uint32_t r = 0; r < n; ++r) {
            m[r] = a.I(r) <= b.I(r) ? kPredTrue : kPredFalse;
          }
          return;
        case CompareOp::kGt:
          for (uint32_t r = 0; r < n; ++r) {
            m[r] = a.I(r) > b.I(r) ? kPredTrue : kPredFalse;
          }
          return;
        case CompareOp::kGe:
          for (uint32_t r = 0; r < n; ++r) {
            m[r] = a.I(r) >= b.I(r) ? kPredTrue : kPredFalse;
          }
          return;
      }
      return;
    }
    // At least one double lane: NaN-exact fused forms of CmpD + ApplyOne
    // (NaN yields c == 0, i.e. "equal" to everything, like the scalar
    // evaluator).
    switch (op) {
      case CompareOp::kEq:
        for (uint32_t r = 0; r < n; ++r) {
          const double x = AsD(a, r), y = AsD(b, r);
          m[r] = (!(x < y) && !(x > y)) ? kPredTrue : kPredFalse;
        }
        return;
      case CompareOp::kNe:
        for (uint32_t r = 0; r < n; ++r) {
          const double x = AsD(a, r), y = AsD(b, r);
          m[r] = (x < y || x > y) ? kPredTrue : kPredFalse;
        }
        return;
      case CompareOp::kLt:
        for (uint32_t r = 0; r < n; ++r) {
          m[r] = AsD(a, r) < AsD(b, r) ? kPredTrue : kPredFalse;
        }
        return;
      case CompareOp::kLe:
        for (uint32_t r = 0; r < n; ++r) {
          m[r] = !(AsD(a, r) > AsD(b, r)) ? kPredTrue : kPredFalse;
        }
        return;
      case CompareOp::kGt:
        for (uint32_t r = 0; r < n; ++r) {
          m[r] = AsD(a, r) > AsD(b, r) ? kPredTrue : kPredFalse;
        }
        return;
      case CompareOp::kGe:
        for (uint32_t r = 0; r < n; ++r) {
          m[r] = !(AsD(a, r) < AsD(b, r)) ? kPredTrue : kPredFalse;
        }
        return;
    }
    return;
  }
  for (uint32_t r = 0; r < n; ++r) m[r] = CmpCell(op, a, b, r);
}

/// Root-fused compare -> selection append (no mask write at all).
void ExecSelectCmp(CompareOp op, const View& a, const View& b,
                   std::vector<uint32_t>* selection, size_t n) {
  if ((a.uniform() && a.ukind == kLaneNull) ||
      (b.uniform() && b.ukind == kLaneNull)) {
    return;  // all NULL: no row selected
  }
  if (a.uniform() && b.uniform() && a.ukind == kLaneInt64 &&
      b.ukind == kLaneInt64) {
    switch (op) {
      case CompareOp::kEq:
        for (uint32_t r = 0; r < n; ++r) {
          if (a.I(r) == b.I(r)) selection->push_back(r);
        }
        return;
      case CompareOp::kNe:
        for (uint32_t r = 0; r < n; ++r) {
          if (a.I(r) != b.I(r)) selection->push_back(r);
        }
        return;
      case CompareOp::kLt:
        for (uint32_t r = 0; r < n; ++r) {
          if (a.I(r) < b.I(r)) selection->push_back(r);
        }
        return;
      case CompareOp::kLe:
        for (uint32_t r = 0; r < n; ++r) {
          if (a.I(r) <= b.I(r)) selection->push_back(r);
        }
        return;
      case CompareOp::kGt:
        for (uint32_t r = 0; r < n; ++r) {
          if (a.I(r) > b.I(r)) selection->push_back(r);
        }
        return;
      case CompareOp::kGe:
        for (uint32_t r = 0; r < n; ++r) {
          if (a.I(r) >= b.I(r)) selection->push_back(r);
        }
        return;
    }
    return;
  }
  for (uint32_t r = 0; r < n; ++r) {
    if (CmpCell(op, a, b, r) == kPredTrue) selection->push_back(r);
  }
}

/// Root-fused AND refinement: keep only selected rows where the compare is
/// TRUE, compacting in place.
void ExecRefineCmp(CompareOp op, const View& a, const View& b,
                   std::vector<uint32_t>* selection) {
  size_t kept = 0;
  if (a.uniform() && b.uniform() && a.ukind == kLaneInt64 &&
      b.ukind == kLaneInt64) {
    for (const uint32_t idx : *selection) {
      bool keep = false;
      switch (op) {
        case CompareOp::kEq: keep = a.I(idx) == b.I(idx); break;
        case CompareOp::kNe: keep = a.I(idx) != b.I(idx); break;
        case CompareOp::kLt: keep = a.I(idx) < b.I(idx); break;
        case CompareOp::kLe: keep = a.I(idx) <= b.I(idx); break;
        case CompareOp::kGt: keep = a.I(idx) > b.I(idx); break;
        case CompareOp::kGe: keep = a.I(idx) >= b.I(idx); break;
      }
      if (keep) (*selection)[kept++] = idx;
    }
  } else {
    for (const uint32_t idx : *selection) {
      if (CmpCell(op, a, b, idx) == kPredTrue) (*selection)[kept++] = idx;
    }
  }
  selection->resize(kept);
}

/// AND-merge with the interpreter's exact decision rule; returns true when
/// every row is decided (all FALSE), enabling the batch short-circuit jump.
bool ExecAndMerge(uint8_t* dst, const uint8_t* term, size_t n) {
  size_t undecided = 0;
  for (size_t r = 0; r < n; ++r) {
    const uint8_t o = dst[r];
    if (o == kPredFalse) continue;
    const uint8_t t = term[r];
    if (t == kPredFalse) {
      dst[r] = kPredFalse;
      continue;
    }
    if (t == kPredNull && o == kPredTrue) dst[r] = kPredNull;
    ++undecided;
  }
  return undecided == 0;
}

bool ExecOrMerge(uint8_t* dst, const uint8_t* term, size_t n) {
  size_t undecided = 0;
  for (size_t r = 0; r < n; ++r) {
    const uint8_t o = dst[r];
    if (o == kPredTrue) continue;
    const uint8_t t = term[r];
    if (t == kPredTrue) {
      dst[r] = kPredTrue;
      continue;
    }
    if (t == kPredNull && o == kPredFalse) dst[r] = kPredNull;
    ++undecided;
  }
  return undecided == 0;
}

/// Shared dispatch loop. `selection` is null for value programs.
bool Run(const CompiledPredicate& p, const MicroPartition& part,
         std::vector<uint32_t>* selection, NumericLanes* value_out,
         EvalScratch* scratch) {
  for (const ColumnReq& req : p.column_reqs) {
    if (req.index >= part.num_columns() ||
        part.column(req.index).type() != req.type) {
      return false;
    }
  }
  if (p.num_lane_regs > kMaxRegisters || p.num_mask_regs > kMaxRegisters) {
    return false;
  }
  const size_t n = static_cast<size_t>(part.row_count());

  LaneReg lanes[kMaxRegisters];
  std::vector<uint8_t>* masks[kMaxRegisters] = {nullptr};
  for (uint16_t i = 0; i < p.num_lane_regs; ++i) {
    lanes[i].lanes = &AcquireLanes(scratch, n);
  }
  for (uint16_t i = 0; i < p.num_mask_regs; ++i) {
    masks[i] = &AcquireMask(scratch, n);
  }
  for (const RegInit& init : p.reg_inits) {
    LaneReg& reg = lanes[init.reg];
    switch (init.rep) {
      case ScalarRep::kNull:
        reg.rep = kRepScalarNull;
        break;
      case ScalarRep::kInt64:
        reg.rep = kRepScalarI64;
        reg.si = init.i64;
        break;
      case ScalarRep::kFloat64:
        reg.rep = kRepScalarF64;
        reg.sf = init.f64;
        break;
    }
  }

  size_t pc = 0;
  while (pc < p.code.size()) {
    const Instr& ins = p.code[pc];
    switch (ins.op) {
      case Op::kLoadCol: {
        const ColumnVector& col = part.column(ins.a);
        LaneReg& d = lanes[ins.dst];
        const std::vector<uint8_t>& nulls = col.null_mask();
        bool any_null = false;
        for (const uint8_t v : nulls) any_null = any_null || (v != 0);
        if (col.type() == DataType::kInt64) {
          if (!any_null) {
            d.rep = kRepAliasI64;
            d.ai = col.int64_data().data();
          } else {
            NumericLanes& out = *d.lanes;
            const auto& xs = col.int64_data();
            for (uint32_t r = 0; r < n; ++r) {
              out.kind[r] = nulls[r] != 0 ? kLaneNull : kLaneInt64;
              out.i64[r] = xs[r];
            }
            d.rep = kRepLanes;
          }
        } else {
          if (!any_null) {
            d.rep = kRepAliasF64;
            d.af = col.float64_data().data();
          } else {
            NumericLanes& out = *d.lanes;
            const auto& xs = col.float64_data();
            for (uint32_t r = 0; r < n; ++r) {
              out.kind[r] = nulls[r] != 0 ? kLaneNull : kLaneDouble;
              out.f64[r] = xs[r];
            }
            d.rep = kRepLanes;
          }
        }
        break;
      }
      case Op::kArith:
        ExecArith(static_cast<ArithOp>(ins.aux), Resolve(lanes[ins.a]),
                  Resolve(lanes[ins.b]), &lanes[ins.dst], n);
        break;
      case Op::kIfVal: {
        const View t = Resolve(lanes[ins.a]);
        const View e = Resolve(lanes[ins.b]);
        const uint8_t* cond = masks[ins.aux]->data();
        LaneReg& d = lanes[ins.dst];
        NumericLanes& out = *d.lanes;
        for (uint32_t r = 0; r < n; ++r) {
          const View& src = cond[r] == kPredTrue ? t : e;
          const uint8_t k = src.K(r);
          if (k == kLaneInt64) {
            out.i64[r] = src.I(r);
          } else if (k == kLaneDouble) {
            out.f64[r] = src.D(r);
          }
          out.kind[r] = k;
        }
        d.rep = kRepLanes;
        break;
      }
      case Op::kCmp:
        ExecCmp(static_cast<CompareOp>(ins.aux), Resolve(lanes[ins.a]),
                Resolve(lanes[ins.b]), masks[ins.dst]->data(), n);
        break;
      case Op::kAndStart:
        std::fill(masks[ins.dst]->begin(), masks[ins.dst]->end(),
                  uint8_t{kPredTrue});
        break;
      case Op::kOrStart:
        std::fill(masks[ins.dst]->begin(), masks[ins.dst]->end(),
                  uint8_t{kPredFalse});
        break;
      case Op::kAndMerge:
        if (ExecAndMerge(masks[ins.dst]->data(), masks[ins.a]->data(), n)) {
          pc = ins.aux;
          continue;
        }
        break;
      case Op::kOrMerge:
        if (ExecOrMerge(masks[ins.dst]->data(), masks[ins.a]->data(), n)) {
          pc = ins.aux;
          continue;
        }
        break;
      case Op::kNot: {
        uint8_t* m = masks[ins.dst]->data();
        for (size_t r = 0; r < n; ++r) {
          const uint8_t o = m[r];
          if (o != kPredNull) {
            m[r] = o == kPredTrue ? kPredFalse : kPredTrue;
          }
        }
        break;
      }
      case Op::kNotTrue: {
        uint8_t* m = masks[ins.dst]->data();
        for (size_t r = 0; r < n; ++r) {
          m[r] = m[r] == kPredTrue ? kPredFalse : kPredTrue;
        }
        break;
      }
      case Op::kIsNull: {
        const std::vector<uint8_t>& nulls = part.column(ins.a).null_mask();
        const bool negate = ins.b != 0;
        uint8_t* m = masks[ins.dst]->data();
        for (uint32_t r = 0; r < n; ++r) {
          const bool is_null = nulls[r] != 0;
          m[r] = (negate ? !is_null : is_null) ? kPredTrue : kPredFalse;
        }
        break;
      }
      case Op::kBoolCol: {
        const ColumnVector& col = part.column(ins.a);
        const std::vector<uint8_t>& nulls = col.null_mask();
        const auto& xs = col.bool_data();
        uint8_t* m = masks[ins.dst]->data();
        for (uint32_t r = 0; r < n; ++r) {
          m[r] = nulls[r] != 0 ? kPredNull
                               : (xs[r] != 0 ? kPredTrue : kPredFalse);
        }
        break;
      }
      case Op::kInList: {
        const ColumnVector& col = part.column(ins.a);
        const std::vector<uint8_t>& nulls = col.null_mask();
        const InCandidate* cands = p.in_list_pool.data() + ins.b;
        const uint32_t count = ins.aux;
        uint8_t* m = masks[ins.dst]->data();
        // cmp_equal over doubles, as the interpreter: !(x<y) && !(x>y).
        auto cmp_equal = [](double x, double y) {
          return !(x < y) && !(x > y);
        };
        if (col.type() == DataType::kInt64) {
          const auto& xs = col.int64_data();
          for (uint32_t r = 0; r < n; ++r) {
            if (nulls[r] != 0) {
              m[r] = kPredNull;
              continue;
            }
            bool found = false;
            for (uint32_t c = 0; c < count && !found; ++c) {
              const InCandidate& cand = cands[c];
              found = cand.is_int
                          ? xs[r] == cand.i64
                          : cmp_equal(static_cast<double>(xs[r]), cand.f64);
            }
            m[r] = found ? kPredTrue : kPredFalse;
          }
        } else {
          const auto& xs = col.float64_data();
          for (uint32_t r = 0; r < n; ++r) {
            if (nulls[r] != 0) {
              m[r] = kPredNull;
              continue;
            }
            bool found = false;
            for (uint32_t c = 0; c < count && !found; ++c) {
              const InCandidate& cand = cands[c];
              found = cmp_equal(
                  xs[r],
                  cand.is_int ? static_cast<double>(cand.i64) : cand.f64);
            }
            m[r] = found ? kPredTrue : kPredFalse;
          }
        }
        break;
      }
      case Op::kIfMask: {
        const uint8_t* cond = masks[ins.aux]->data();
        const uint8_t* t = masks[ins.a]->data();
        const uint8_t* e = masks[ins.b]->data();
        uint8_t* m = masks[ins.dst]->data();
        for (size_t r = 0; r < n; ++r) {
          m[r] = cond[r] == kPredTrue ? t[r] : e[r];
        }
        break;
      }
      case Op::kConstMask:
        std::fill(masks[ins.dst]->begin(), masks[ins.dst]->end(),
                  static_cast<uint8_t>(ins.a));
        break;
      case Op::kFallback:
        // The vectorized interpreter IS the fallback kernel: identical cost
        // and identical bytes to the term it replaces, by construction.
        EvalPredicateOutcomes(*p.fallback_terms[ins.a], part, masks[ins.dst],
                              scratch);
        break;
      case Op::kSelect: {
        const uint8_t* m = masks[ins.a]->data();
        for (uint32_t r = 0; r < n; ++r) {
          if (m[r] == kPredTrue) selection->push_back(r);
        }
        break;
      }
      case Op::kSelectCmp:
        ExecSelectCmp(static_cast<CompareOp>(ins.aux), Resolve(lanes[ins.a]),
                      Resolve(lanes[ins.b]), selection, n);
        break;
      case Op::kRefineCmp:
        ExecRefineCmp(static_cast<CompareOp>(ins.aux), Resolve(lanes[ins.a]),
                      Resolve(lanes[ins.b]), selection);
        break;
    }
    ++pc;
  }

  if (value_out != nullptr && p.root_value_reg >= 0) {
    const View v = Resolve(lanes[p.root_value_reg]);
    value_out->Resize(n);
    for (uint32_t r = 0; r < n; ++r) {
      const uint8_t k = v.K(r);
      if (k == kLaneInt64) {
        value_out->i64[r] = v.I(r);
      } else if (k == kLaneDouble) {
        value_out->f64[r] = v.D(r);
      }
      value_out->kind[r] = k;
    }
  }

  for (uint16_t i = 0; i < p.num_mask_regs; ++i) ReleaseMask(scratch);
  for (uint16_t i = 0; i < p.num_lane_regs; ++i) ReleaseLanes(scratch);
  return true;
}

}  // namespace

bool ExecuteSelection(const CompiledPredicate& program,
                      const MicroPartition& partition,
                      std::vector<uint32_t>* selection, EvalScratch* scratch) {
  if (program.root_value_reg >= 0) return false;  // value program
  selection->clear();
  if (!Run(program, partition, selection, nullptr, scratch)) return false;
  static Counter* const hits = Counters().hits;
  hits->Add();
  return true;
}

bool ExecuteValue(const CompiledPredicate& program,
                  const MicroPartition& partition, NumericLanes* out,
                  EvalScratch* scratch) {
  if (program.root_value_reg < 0) return false;
  if (!Run(program, partition, nullptr, out, scratch)) return false;
  static Counter* const hits = Counters().hits;
  hits->Add();
  return true;
}

}  // namespace jit
}  // namespace snowprune
