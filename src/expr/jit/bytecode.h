#ifndef SNOWPRUNE_EXPR_JIT_BYTECODE_H_
#define SNOWPRUNE_EXPR_JIT_BYTECODE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/value.h"
#include "expr/expr.h"

namespace snowprune {

class Counter;

namespace jit {

/// The specialization tier's instruction set: a flat, type-resolved program
/// compiled from a hot predicate's expression tree. One instruction replaces
/// one interpreter tree node; the dispatch loop in executor.cc replaces the
/// per-batch virtual recursion, re-typing, and tree walks. Value ops write
/// lane registers (NumericLanes pooled from EvalScratch), predicate ops
/// write mask registers (PredicateOutcome vectors from the same pool).
enum class Op : uint8_t {
  // -- value ops (dst = lane register) --------------------------------------
  kLoadCol,    ///< dst <- column a (int64/float64; null-free columns alias).
  kArith,      ///< dst <- a (aux: ArithOp) b, NumericLanes semantics exactly.
  kIfVal,      ///< dst <- mask[aux] per-row TRUE ? a : b.
  // -- predicate ops (dst = mask register) ----------------------------------
  kCmp,        ///< dst <- a (aux: CompareOp) b over lanes.
  kAndStart,   ///< dst <- all kPredTrue (AND identity).
  kOrStart,    ///< dst <- all kPredFalse (OR identity).
  kAndMerge,   ///< dst &= mask a; if every row decided, jump to pc aux.
  kOrMerge,    ///< dst |= mask a; if every row decided, jump to pc aux.
  kNot,        ///< dst: TRUE<->FALSE in place, NULL unchanged.
  kNotTrue,    ///< dst: TRUE->FALSE, FALSE/NULL->TRUE in place.
  kIsNull,     ///< dst <- column a's null mask (b != 0: negate).
  kBoolCol,    ///< dst <- bool column a (null -> kPredNull).
  kInList,     ///< dst <- column a IN in_list_pool[b, b+aux).
  kIfMask,     ///< dst <- mask[aux] per-row TRUE ? mask a : mask b.
  kConstMask,  ///< dst <- broadcast outcome a.
  kFallback,   ///< dst <- interpret fallback_terms[a] (vectorized oracle).
  // -- selection ops (terminal) ---------------------------------------------
  kSelect,     ///< selection <- rows where mask a == kPredTrue.
  kSelectCmp,  ///< selection <- rows where a (aux: CompareOp) b is TRUE.
  kRefineCmp,  ///< selection <- keep rows where a (aux: CompareOp) b is TRUE.
};

struct Instr {
  Op op;
  uint16_t dst = 0;
  uint16_t a = 0;
  uint16_t b = 0;
  uint32_t aux = 0;
};

/// Fixed register-file size of the executor (stack-allocated per batch);
/// the compiler rejects predicates whose register demand exceeds it.
constexpr uint16_t kMaxRegisters = 48;

/// Program-length cap. Expression DAGs with shared subtrees flatten to a
/// tree-sized program (the compiler does not dedupe); the cap bounds both
/// program size and compile work on pathological sharing — such predicates
/// are rejected kTooComplex and stay on the interpreter.
constexpr size_t kMaxInstructions = 1024;

/// Scalar literal pre-resolved at compile time: applied to a lane register
/// once at program start, at zero per-batch cost.
enum class ScalarRep : uint8_t { kNull = 0, kInt64 = 1, kFloat64 = 2 };

struct RegInit {
  uint16_t reg;
  ScalarRep rep;
  int64_t i64 = 0;
  double f64 = 0.0;
};

/// A column the program reads; the executor validates index + physical type
/// against every batch before running (schema drift -> interpreter path).
struct ColumnReq {
  uint32_t index;
  DataType type;
};

/// Pre-filtered numeric IN-list candidate (NULL/string/bool literals are
/// dropped at compile time, mirroring the interpreter's per-row skip).
struct InCandidate {
  bool is_int;
  int64_t i64;
  double f64;
};

/// Why a predicate could not be compiled (annotated on the trace span).
enum class RejectReason : int {
  kNone = 0,
  kNoNativeStructure = 1,  ///< No term compiles natively; program would only
                           ///< re-drive the interpreter with extra overhead.
  kTooComplex = 2,         ///< Register demand above the executor's cap.
  kNotCompilable = 3,      ///< Root shape outside the bytecode's value model.
};

/// A compiled predicate (or projection) program. Immutable once published;
/// shared across streams and shards via shared_ptr.
struct CompiledPredicate {
  std::vector<Instr> code;
  std::vector<RegInit> reg_inits;
  std::vector<ColumnReq> column_reqs;
  std::vector<InCandidate> in_list_pool;
  /// Subtrees executed through the vectorized interpreter per batch
  /// (strings/LIKE/unbound shapes fall back per-term, not whole-program).
  std::vector<ExprPtr> fallback_terms;
  uint16_t num_lane_regs = 0;
  uint16_t num_mask_regs = 0;
  size_t schema_columns = 0;
  /// Table::instance_id() the program was compiled against; 0 when the
  /// program is per-query (eager mode) and dies with the plan. A cached
  /// program whose instance no longer matches is invalid (DML replaced the
  /// table) and must not run.
  uint64_t table_instance = 0;
  /// Value programs (projection kernels): the register holding the root
  /// value; -1 for predicate programs.
  int root_value_reg = -1;
};

/// Process-wide specialization-tier instruments (one registry entry each):
///   jit.compiles       programs successfully compiled
///   jit.hits           batches executed by a compiled program
///   jit.fallbacks      per-term interpreter fallbacks emitted + whole-shape
///                      rejections (the "couldn't specialize" family)
///   jit.invalidations  cached programs dropped by DML or instance mismatch
struct JitCounters {
  Counter* compiles;
  Counter* hits;
  Counter* fallbacks;
  Counter* invalidations;
};
JitCounters& Counters();

}  // namespace jit
}  // namespace snowprune

#endif  // SNOWPRUNE_EXPR_JIT_BYTECODE_H_
