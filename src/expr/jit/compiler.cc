/// Bytecode compiler for the expression specialization tier (ROADMAP open
/// item 1): flattens a bound predicate tree into the typed register program
/// described in bytecode.h. The compiler is conservative — anything outside
/// the typed-lane value model (string/bool values, LIKE/STARTSWITH, unbound
/// columns) becomes a per-term kFallback instruction that drives the
/// vectorized interpreter, and a predicate with no native structure at all
/// is rejected so the scan keeps the plain interpreter path.
#include "expr/jit/compiler.h"

#include <utility>
#include <vector>

#include "common/metrics.h"

namespace snowprune {
namespace jit {

JitCounters& Counters() {
  static JitCounters c{MetricsRegistry::Instance().GetCounter("jit.compiles"),
                       MetricsRegistry::Instance().GetCounter("jit.hits"),
                       MetricsRegistry::Instance().GetCounter("jit.fallbacks"),
                       MetricsRegistry::Instance().GetCounter(
                           "jit.invalidations")};
  return c;
}

namespace {

/// Registers the jit.* counter family at process start so every metrics
/// snapshot (and tools/check_metrics_schema.py) sees the names even before
/// the first compilation. This TU is always linked: the engine references
/// CompilePredicate.
const bool kJitCountersRegistered = (Counters(), true);

class Compiler {
 public:
  Compiler(const Schema& schema, CompiledPredicate* p)
      : schema_(schema), p_(p) {}

  struct MaskRes {
    int reg;
    bool native;
  };

  bool ok() const { return ok_; }
  int fallbacks() const { return fallbacks_; }
  uint16_t lane_high_water() const { return next_lane_; }
  uint16_t mask_high_water() const { return next_mask_; }

  /// Compiles the whole predicate down to selection instructions. Returns
  /// whether any part of it compiled natively.
  bool CompileRoot(const ExprPtr& expr) {
    // Fused forms first: a native root comparison — or an AND of native
    // comparisons — writes the selection vector directly (no outcome mask,
    // no merge pass), the shape the arith_filter/scan_filter benches hit.
    if (expr->kind() == ExprKind::kCompare) {
      const State s = Save();
      const auto& cmp = static_cast<const CompareExpr&>(*expr);
      const int l = CompileValue(cmp.left());
      const int r = l >= 0 ? CompileValue(cmp.right()) : -1;
      if (l >= 0 && r >= 0 && ok_) {
        Emit({Op::kSelectCmp, 0, static_cast<uint16_t>(l),
              static_cast<uint16_t>(r), static_cast<uint32_t>(cmp.op())});
        FreeLane(l);
        FreeLane(r);
        return true;
      }
      Restore(s);
    } else if (expr->kind() == ExprKind::kAnd) {
      const auto& conn = static_cast<const BoolConnectiveExpr&>(*expr);
      bool all_compares = !conn.terms().empty();
      for (const ExprPtr& term : conn.terms()) {
        all_compares = all_compares && term->kind() == ExprKind::kCompare;
      }
      if (all_compares && TryCompileRefineChain(conn)) return true;
    }
    const MaskRes m = CompileMask(expr);
    Emit({Op::kSelect, 0, static_cast<uint16_t>(m.reg), 0, 0});
    FreeMask(m.reg);
    return m.native;
  }

  /// Value-program entry: compiles `expr` as a numeric value, returning its
  /// lane register or -1.
  int CompileValue(const ExprPtr& e) {
    // Once the register file or program cap is blown the result is fixed
    // (kTooComplex); unwinding immediately keeps compile time linear even
    // on expression DAGs whose tree expansion is exponential.
    if (!ok_) return -1;
    switch (e->kind()) {
      case ExprKind::kColumnRef: {
        const auto& ref = static_cast<const ColumnRefExpr&>(*e);
        if (!ref.bound() || ref.index() >= schema_.num_columns()) return -1;
        const DataType type = schema_.field(ref.index()).type;
        if (type != DataType::kInt64 && type != DataType::kFloat64) return -1;
        const int reg = AllocLane();
        AddColumnReq(ref.index());
        Emit({Op::kLoadCol, static_cast<uint16_t>(reg),
              static_cast<uint16_t>(ref.index()), 0, 0});
        return reg;
      }
      case ExprKind::kLiteral: {
        const Value& v = static_cast<const LiteralExpr&>(*e).value();
        RegInit init{0, ScalarRep::kNull, 0, 0.0};
        if (v.is_null()) {
          init.rep = ScalarRep::kNull;
        } else if (v.is_int64()) {
          init.rep = ScalarRep::kInt64;
          init.i64 = v.int64_value();
        } else if (v.is_float64()) {
          init.rep = ScalarRep::kFloat64;
          init.f64 = v.float64_value();
        } else {
          return -1;  // string/bool values are outside the lane model
        }
        // Literal registers are pinned AND fresh: RegInit writes them once
        // at program start, before every instruction, so the register must
        // never be any instruction's dst — not reused later (pin blocks the
        // free list) and not a recycled register whose earlier dst-writes
        // would land after the init (fresh allocation bypasses the list).
        const int reg = AllocFreshLane();
        init.reg = static_cast<uint16_t>(reg);
        p_->reg_inits.push_back(init);
        pinned_lanes_.push_back(static_cast<uint16_t>(reg));
        return reg;
      }
      case ExprKind::kArith: {
        const auto& arith = static_cast<const ArithExpr&>(*e);
        const int l = CompileValue(arith.left());
        if (l < 0) return -1;
        const int r = CompileValue(arith.right());
        if (r < 0) return -1;
        FreeLane(l);
        FreeLane(r);
        const int d = AllocLane();
        Emit({Op::kArith, static_cast<uint16_t>(d), static_cast<uint16_t>(l),
              static_cast<uint16_t>(r), static_cast<uint32_t>(arith.op())});
        return d;
      }
      case ExprKind::kIf: {
        const auto& ife = static_cast<const IfExpr&>(*e);
        const MaskRes cond = CompileMask(ife.cond());
        const int t = CompileValue(ife.then_expr());
        if (t < 0) return -1;
        const int el = CompileValue(ife.else_expr());
        if (el < 0) return -1;
        FreeMask(cond.reg);
        FreeLane(t);
        FreeLane(el);
        const int d = AllocLane();
        Emit({Op::kIfVal, static_cast<uint16_t>(d), static_cast<uint16_t>(t),
              static_cast<uint16_t>(el), static_cast<uint32_t>(cond.reg)});
        return d;
      }
      default:
        return -1;
    }
  }

  /// Predicate compilation: never fails on shape — unsupported shapes
  /// become a kFallback term over the vectorized interpreter. (A blown
  /// register/program cap still unwinds; see CompileValue.)
  MaskRes CompileMask(const ExprPtr& e) {
    if (!ok_) return {0, false};
    switch (e->kind()) {
      case ExprKind::kCompare: {
        const State s = Save();
        const auto& cmp = static_cast<const CompareExpr&>(*e);
        const int l = CompileValue(cmp.left());
        const int r = l >= 0 ? CompileValue(cmp.right()) : -1;
        if (l >= 0 && r >= 0 && ok_) {
          const int d = AllocMask();
          Emit({Op::kCmp, static_cast<uint16_t>(d), static_cast<uint16_t>(l),
                static_cast<uint16_t>(r), static_cast<uint32_t>(cmp.op())});
          FreeLane(l);
          FreeLane(r);
          return {d, true};
        }
        Restore(s);
        return {EmitFallback(e), false};
      }
      case ExprKind::kAnd:
      case ExprKind::kOr: {
        const bool is_and = e->kind() == ExprKind::kAnd;
        const auto& conn = static_cast<const BoolConnectiveExpr&>(*e);
        const int d = AllocMask();
        Emit({is_and ? Op::kAndStart : Op::kOrStart,
              static_cast<uint16_t>(d), 0, 0, 0});
        std::vector<size_t> merge_pcs;
        bool native = false;
        for (const ExprPtr& term : conn.terms()) {
          const MaskRes t = CompileMask(term);
          native = native || t.native;
          merge_pcs.push_back(p_->code.size());
          Emit({is_and ? Op::kAndMerge : Op::kOrMerge,
                static_cast<uint16_t>(d), static_cast<uint16_t>(t.reg), 0, 0});
          FreeMask(t.reg);
        }
        // Batch-level short-circuit: once every row is decided, the merge
        // jumps past the connective's remaining term computations.
        const auto end_pc = static_cast<uint32_t>(p_->code.size());
        for (const size_t pc : merge_pcs) p_->code[pc].aux = end_pc;
        return {d, native};
      }
      case ExprKind::kNot: {
        const MaskRes m = CompileMask(static_cast<const NotExpr&>(*e).input());
        Emit({Op::kNot, static_cast<uint16_t>(m.reg), 0, 0, 0});
        return m;
      }
      case ExprKind::kNotTrue: {
        const MaskRes m =
            CompileMask(static_cast<const NotTrueExpr&>(*e).input());
        Emit({Op::kNotTrue, static_cast<uint16_t>(m.reg), 0, 0, 0});
        return m;
      }
      case ExprKind::kIsNull: {
        const auto& isn = static_cast<const IsNullExpr&>(*e);
        const Expr& in = *isn.input();
        if (in.kind() == ExprKind::kColumnRef) {
          const auto& ref = static_cast<const ColumnRefExpr&>(in);
          if (ref.bound() && ref.index() < schema_.num_columns()) {
            const int d = AllocMask();
            AddColumnReq(ref.index());
            const uint16_t negate = isn.negate() ? 1 : 0;
            Emit({Op::kIsNull, static_cast<uint16_t>(d),
                  static_cast<uint16_t>(ref.index()), negate, 0});
            return {d, true};
          }
        }
        return {EmitFallback(e), false};
      }
      case ExprKind::kColumnRef: {
        const auto& ref = static_cast<const ColumnRefExpr&>(*e);
        if (ref.bound() && ref.index() < schema_.num_columns() &&
            schema_.field(ref.index()).type == DataType::kBool) {
          const int d = AllocMask();
          AddColumnReq(ref.index());
          Emit({Op::kBoolCol, static_cast<uint16_t>(d),
                static_cast<uint16_t>(ref.index()), 0, 0});
          return {d, true};
        }
        return {EmitFallback(e), false};
      }
      case ExprKind::kLiteral: {
        const Value& v = static_cast<const LiteralExpr&>(*e).value();
        if (v.is_null() || v.is_bool()) {
          const int d = AllocMask();
          const uint16_t outcome =
              v.is_null() ? uint16_t{2} : (v.bool_value() ? 1 : 0);
          Emit({Op::kConstMask, static_cast<uint16_t>(d), outcome, 0, 0});
          return {d, true};
        }
        return {EmitFallback(e), false};
      }
      case ExprKind::kInList: {
        const auto& inl = static_cast<const InListExpr&>(*e);
        const Expr& in = *inl.input();
        if (in.kind() == ExprKind::kColumnRef) {
          const auto& ref = static_cast<const ColumnRefExpr&>(in);
          if (ref.bound() && ref.index() < schema_.num_columns()) {
            const DataType type = schema_.field(ref.index()).type;
            if (type == DataType::kInt64 || type == DataType::kFloat64) {
              const auto first = static_cast<uint16_t>(p_->in_list_pool.size());
              uint32_t count = 0;
              for (const Value& cand : inl.values()) {
                // NULL/string/bool candidates never match a numeric column;
                // the interpreter skips them per row, we drop them here.
                if (cand.is_null() || cand.is_string() || cand.is_bool()) {
                  continue;
                }
                InCandidate c{cand.is_int64(), 0, 0.0};
                if (c.is_int) {
                  c.i64 = cand.int64_value();
                } else {
                  c.f64 = cand.float64_value();
                }
                p_->in_list_pool.push_back(c);
                ++count;
              }
              const int d = AllocMask();
              AddColumnReq(ref.index());
              Emit({Op::kInList, static_cast<uint16_t>(d),
                    static_cast<uint16_t>(ref.index()), first, count});
              return {d, true};
            }
          }
        }
        return {EmitFallback(e), false};
      }
      case ExprKind::kIf: {
        const auto& ife = static_cast<const IfExpr&>(*e);
        const MaskRes c = CompileMask(ife.cond());
        const MaskRes t = CompileMask(ife.then_expr());
        const MaskRes el = CompileMask(ife.else_expr());
        FreeMask(c.reg);
        FreeMask(t.reg);
        FreeMask(el.reg);
        const int d = AllocMask();
        Emit({Op::kIfMask, static_cast<uint16_t>(d),
              static_cast<uint16_t>(t.reg), static_cast<uint16_t>(el.reg),
              static_cast<uint32_t>(c.reg)});
        return {d, c.native || t.native || el.native};
      }
      default:
        // kArith in predicate position, kLike, kStartsWith: interpreter.
        return {EmitFallback(e), false};
    }
  }

 private:
  /// Speculation checkpoint: CompileValue attempts inside a comparison may
  /// emit loads/inits before discovering an unsupported operand; Restore
  /// rolls the program and allocator back so the fallback term starts clean.
  struct State {
    size_t code, inits, reqs, pool, terms, pinned;
    std::vector<uint16_t> free_lanes, free_masks;
    uint16_t next_lane, next_mask;
    int fallbacks;
    bool ok;
  };

  State Save() const {
    return State{p_->code.size(),          p_->reg_inits.size(),
                 p_->column_reqs.size(),   p_->in_list_pool.size(),
                 p_->fallback_terms.size(), pinned_lanes_.size(),
                 free_lanes_,              free_masks_,
                 next_lane_,               next_mask_,
                 fallbacks_,               ok_};
  }

  void Restore(const State& s) {
    p_->code.resize(s.code);
    p_->reg_inits.resize(s.inits);
    p_->column_reqs.resize(s.reqs);
    p_->in_list_pool.resize(s.pool);
    p_->fallback_terms.resize(s.terms);
    pinned_lanes_.resize(s.pinned);
    free_lanes_ = s.free_lanes;
    free_masks_ = s.free_masks;
    next_lane_ = s.next_lane;
    next_mask_ = s.next_mask;
    fallbacks_ = s.fallbacks;
    ok_ = s.ok;
  }

  bool TryCompileRefineChain(const BoolConnectiveExpr& conn) {
    const State s = Save();
    bool first = true;
    for (const ExprPtr& term : conn.terms()) {
      const auto& cmp = static_cast<const CompareExpr&>(*term);
      const int l = CompileValue(cmp.left());
      const int r = l >= 0 ? CompileValue(cmp.right()) : -1;
      if (l < 0 || r < 0 || !ok_) {
        Restore(s);
        return false;
      }
      Emit({first ? Op::kSelectCmp : Op::kRefineCmp, 0,
            static_cast<uint16_t>(l), static_cast<uint16_t>(r),
            static_cast<uint32_t>(cmp.op())});
      FreeLane(l);
      FreeLane(r);
      first = false;
    }
    return true;
  }

  void Emit(Instr ins) {
    if (p_->code.size() >= kMaxInstructions) {
      ok_ = false;
      return;
    }
    p_->code.push_back(ins);
  }

  int AllocLane() {
    if (!free_lanes_.empty()) {
      const int reg = free_lanes_.back();
      free_lanes_.pop_back();
      return reg;
    }
    return AllocFreshLane();
  }
  int AllocFreshLane() {
    if (next_lane_ >= kMaxRegisters) {
      ok_ = false;
      return 0;
    }
    return next_lane_++;
  }
  void FreeLane(int reg) {
    for (const uint16_t pinned : pinned_lanes_) {
      if (pinned == reg) return;
    }
    free_lanes_.push_back(static_cast<uint16_t>(reg));
  }

  int AllocMask() {
    if (!free_masks_.empty()) {
      const int reg = free_masks_.back();
      free_masks_.pop_back();
      return reg;
    }
    if (next_mask_ >= kMaxRegisters) {
      ok_ = false;
      return 0;
    }
    return next_mask_++;
  }
  void FreeMask(int reg) {
    free_masks_.push_back(static_cast<uint16_t>(reg));
  }

  int EmitFallback(const ExprPtr& e) {
    const int reg = AllocMask();
    const auto term = static_cast<uint16_t>(p_->fallback_terms.size());
    p_->fallback_terms.push_back(e);
    Emit({Op::kFallback, static_cast<uint16_t>(reg), term, 0, 0});
    ++fallbacks_;
    return reg;
  }

  void AddColumnReq(size_t index) {
    for (const ColumnReq& req : p_->column_reqs) {
      if (req.index == index) return;
    }
    p_->column_reqs.push_back(ColumnReq{static_cast<uint32_t>(index),
                                        schema_.field(index).type});
  }

  const Schema& schema_;
  CompiledPredicate* p_;
  /// Lane registers holding RegInit-applied literals (see CompileValue's
  /// kLiteral case): excluded from reuse for the program's lifetime.
  std::vector<uint16_t> pinned_lanes_;
  std::vector<uint16_t> free_lanes_, free_masks_;
  uint16_t next_lane_ = 0, next_mask_ = 0;
  int fallbacks_ = 0;
  bool ok_ = true;
};

}  // namespace

CompileResult CompilePredicate(const ExprPtr& expr, const Schema& schema) {
  (void)kJitCountersRegistered;
  CompileResult result;
  if (expr == nullptr) {
    result.reason = RejectReason::kNotCompilable;
    return result;
  }
  auto program = std::make_shared<CompiledPredicate>();
  program->schema_columns = schema.num_columns();
  Compiler compiler(schema, program.get());
  const bool native = compiler.CompileRoot(expr);
  if (!compiler.ok()) {
    Counters().fallbacks->Add();
    result.reason = RejectReason::kTooComplex;
    return result;
  }
  if (!native) {
    // A program that is pure fallback would only re-drive the interpreter
    // with merge overhead on top; reject so the scan keeps the plain path.
    Counters().fallbacks->Add();
    result.reason = RejectReason::kNoNativeStructure;
    return result;
  }
  program->num_lane_regs = compiler.lane_high_water();
  program->num_mask_regs = compiler.mask_high_water();
  result.fallback_terms = compiler.fallbacks();
  result.program = std::move(program);
  Counters().compiles->Add();
  if (result.fallback_terms > 0) {
    Counters().fallbacks->Add(result.fallback_terms);
  }
  return result;
}

CompileResult CompileValueProgram(const ExprPtr& expr, const Schema& schema) {
  (void)kJitCountersRegistered;
  CompileResult result;
  if (expr == nullptr) {
    result.reason = RejectReason::kNotCompilable;
    return result;
  }
  auto program = std::make_shared<CompiledPredicate>();
  program->schema_columns = schema.num_columns();
  Compiler compiler(schema, program.get());
  const int root = compiler.CompileValue(expr);
  if (root < 0 || !compiler.ok()) {
    Counters().fallbacks->Add();
    result.reason = compiler.ok() ? RejectReason::kNotCompilable
                                  : RejectReason::kTooComplex;
    return result;
  }
  program->root_value_reg = root;
  program->num_lane_regs = compiler.lane_high_water();
  program->num_mask_regs = compiler.mask_high_water();
  result.fallback_terms = compiler.fallbacks();
  result.program = std::move(program);
  Counters().compiles->Add();
  if (result.fallback_terms > 0) {
    Counters().fallbacks->Add(result.fallback_terms);
  }
  return result;
}

}  // namespace jit
}  // namespace snowprune
