#ifndef SNOWPRUNE_EXPR_LIKE_H_
#define SNOWPRUNE_EXPR_LIKE_H_

#include <optional>
#include <string>

namespace snowprune {

/// SQL LIKE matcher with % (any run) and _ (any single char); no escapes.
bool LikeMatch(const std::string& text, const std::string& pattern);

/// The literal prefix of a LIKE pattern before the first wildcard
/// ("Marked-%-Ridge" -> "Marked-"). Empty when the pattern starts with a
/// wildcard.
std::string LikePrefix(const std::string& pattern);

/// True when `pattern` is exactly <literal>% — i.e. LIKE is *equivalent* to
/// STARTSWITH(literal), making the rewrite precise rather than widening.
bool IsPurePrefixPattern(const std::string& pattern);

/// True when the pattern contains no wildcards (LIKE degenerates to =).
bool IsExactPattern(const std::string& pattern);

/// The smallest string strictly greater than every string with prefix `s`:
/// increments the last non-0xFF byte and truncates. nullopt when every byte
/// is 0xFF (the prefix range is unbounded above). Strings with prefix p form
/// the interval [p, Successor(p)).
std::optional<std::string> PrefixSuccessor(const std::string& s);

}  // namespace snowprune

#endif  // SNOWPRUNE_EXPR_LIKE_H_
