#ifndef SNOWPRUNE_EXPR_BUILDER_H_
#define SNOWPRUNE_EXPR_BUILDER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "expr/expr.h"

namespace snowprune {

/// Fluent construction helpers for expression trees; the library's plan-
/// building API in lieu of a SQL parser. Example (the paper's §3 query):
///
///   auto pred = And({
///       Gt(If(Eq(Col("unit"), Lit("feet")),
///             Mul(Col("altit"), Lit(0.3048)), Col("altit")),
///          Lit(1500)),
///       Like(Col("name"), "Marked-%-Ridge")});

inline ExprPtr Col(std::string name) {
  return std::make_shared<ColumnRefExpr>(std::move(name));
}

inline ExprPtr Lit(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }
inline ExprPtr Lit(int64_t v) { return Lit(Value(v)); }
inline ExprPtr Lit(int v) { return Lit(Value(v)); }
inline ExprPtr Lit(double v) { return Lit(Value(v)); }
inline ExprPtr Lit(const char* v) { return Lit(Value(v)); }
inline ExprPtr Lit(std::string v) { return Lit(Value(std::move(v))); }
inline ExprPtr Lit(bool v) { return Lit(Value(v)); }
inline ExprPtr NullLit() { return Lit(Value::Null()); }

inline ExprPtr Add(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithExpr>(ArithOp::kAdd, std::move(a), std::move(b));
}
inline ExprPtr Sub(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithExpr>(ArithOp::kSub, std::move(a), std::move(b));
}
inline ExprPtr Mul(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithExpr>(ArithOp::kMul, std::move(a), std::move(b));
}
inline ExprPtr Div(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithExpr>(ArithOp::kDiv, std::move(a), std::move(b));
}

inline ExprPtr Cmp(CompareOp op, ExprPtr a, ExprPtr b) {
  return std::make_shared<CompareExpr>(op, std::move(a), std::move(b));
}
inline ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return Cmp(CompareOp::kEq, std::move(a), std::move(b));
}
inline ExprPtr Ne(ExprPtr a, ExprPtr b) {
  return Cmp(CompareOp::kNe, std::move(a), std::move(b));
}
inline ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return Cmp(CompareOp::kLt, std::move(a), std::move(b));
}
inline ExprPtr Le(ExprPtr a, ExprPtr b) {
  return Cmp(CompareOp::kLe, std::move(a), std::move(b));
}
inline ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return Cmp(CompareOp::kGt, std::move(a), std::move(b));
}
inline ExprPtr Ge(ExprPtr a, ExprPtr b) {
  return Cmp(CompareOp::kGe, std::move(a), std::move(b));
}

inline ExprPtr And(std::vector<ExprPtr> terms) {
  return std::make_shared<BoolConnectiveExpr>(ExprKind::kAnd, std::move(terms));
}
inline ExprPtr Or(std::vector<ExprPtr> terms) {
  return std::make_shared<BoolConnectiveExpr>(ExprKind::kOr, std::move(terms));
}
inline ExprPtr Not(ExprPtr input) {
  return std::make_shared<NotExpr>(std::move(input));
}
inline ExprPtr NotTrue(ExprPtr input) {
  return std::make_shared<NotTrueExpr>(std::move(input));
}

inline ExprPtr If(ExprPtr cond, ExprPtr then_expr, ExprPtr else_expr) {
  return std::make_shared<IfExpr>(std::move(cond), std::move(then_expr),
                                  std::move(else_expr));
}

inline ExprPtr Like(ExprPtr input, std::string pattern) {
  return std::make_shared<LikeExpr>(std::move(input), std::move(pattern));
}
inline ExprPtr StartsWith(ExprPtr input, std::string prefix) {
  return std::make_shared<StartsWithExpr>(std::move(input), std::move(prefix));
}

inline ExprPtr In(ExprPtr input, std::vector<Value> values) {
  return std::make_shared<InListExpr>(std::move(input), std::move(values));
}

inline ExprPtr IsNull(ExprPtr input) {
  return std::make_shared<IsNullExpr>(std::move(input), /*negate=*/false);
}
inline ExprPtr IsNotNull(ExprPtr input) {
  return std::make_shared<IsNullExpr>(std::move(input), /*negate=*/true);
}

/// x BETWEEN lo AND hi, desugared to (x >= lo AND x <= hi).
inline ExprPtr Between(ExprPtr x, Value lo, Value hi) {
  return And({Ge(x, Lit(std::move(lo))), Le(std::move(x), Lit(std::move(hi)))});
}

}  // namespace snowprune

#endif  // SNOWPRUNE_EXPR_BUILDER_H_
