#include "expr/rewrite.h"

#include "expr/builder.h"
#include "expr/like.h"

namespace snowprune {

ExprPtr RewriteForPruning(const ExprPtr& expr) {
  switch (expr->kind()) {
    case ExprKind::kLike: {
      const auto& e = static_cast<const LikeExpr&>(*expr);
      if (IsExactPattern(e.pattern())) {
        return Eq(e.input(), Lit(Value(e.pattern())));
      }
      std::string prefix = LikePrefix(e.pattern());
      if (prefix.empty()) return Lit(true);  // wildcard-led: unprunable
      return StartsWith(e.input(), prefix);
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      const auto& e = static_cast<const BoolConnectiveExpr&>(*expr);
      std::vector<ExprPtr> terms;
      terms.reserve(e.terms().size());
      for (const auto& t : e.terms()) terms.push_back(RewriteForPruning(t));
      return std::make_shared<BoolConnectiveExpr>(expr->kind(), std::move(terms));
    }
    case ExprKind::kNot: {
      // NOT over a widened child would be unsound (widening flips to
      // narrowing under negation); keep the original subtree.
      return expr;
    }
    case ExprKind::kIf: {
      const auto& e = static_cast<const IfExpr&>(*expr);
      return If(e.cond(), RewriteForPruning(e.then_expr()),
                RewriteForPruning(e.else_expr()));
    }
    default:
      return expr;
  }
}

ExprPtr BuildInvertedPredicate(const ExprPtr& expr) {
  switch (expr->kind()) {
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      // (a AND b) IS NOT TRUE  ==  (a IS NOT TRUE) OR (b IS NOT TRUE)
      // (a OR b)  IS NOT TRUE  ==  (a IS NOT TRUE) AND (b IS NOT TRUE)
      const auto& e = static_cast<const BoolConnectiveExpr&>(*expr);
      std::vector<ExprPtr> terms;
      terms.reserve(e.terms().size());
      for (const auto& t : e.terms()) terms.push_back(BuildInvertedPredicate(t));
      ExprKind flipped =
          expr->kind() == ExprKind::kAnd ? ExprKind::kOr : ExprKind::kAnd;
      return std::make_shared<BoolConnectiveExpr>(flipped, std::move(terms));
    }
    case ExprKind::kCompare: {
      // (a op b) IS NOT TRUE == (a inv-op b) OR a IS NULL OR b IS NULL;
      // the NotTrue wrapper captures exactly that without extra nodes.
      return NotTrue(expr);
    }
    default:
      return NotTrue(expr);
  }
}

namespace {

void FlattenInto(ExprKind kind, const ExprPtr& expr,
                 std::vector<ExprPtr>* out) {
  if (expr->kind() == kind) {
    const auto& e = static_cast<const BoolConnectiveExpr&>(*expr);
    for (const auto& t : e.terms()) FlattenInto(kind, t, out);
  } else {
    out->push_back(expr);
  }
}

bool IsBoolLiteral(const ExprPtr& e, bool value) {
  if (e->kind() != ExprKind::kLiteral) return false;
  const Value& v = static_cast<const LiteralExpr&>(*e).value();
  return v.is_bool() && v.bool_value() == value;
}

}  // namespace

ExprPtr Simplify(const ExprPtr& expr) {
  switch (expr->kind()) {
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      const bool is_and = expr->kind() == ExprKind::kAnd;
      std::vector<ExprPtr> flat;
      FlattenInto(expr->kind(), expr, &flat);
      std::vector<ExprPtr> terms;
      for (const auto& t : flat) {
        ExprPtr s = Simplify(t);
        if (IsBoolLiteral(s, is_and)) continue;    // neutral element
        if (IsBoolLiteral(s, !is_and)) return s;   // dominating element
        terms.push_back(std::move(s));
      }
      if (terms.empty()) return Lit(is_and);
      if (terms.size() == 1) return terms[0];
      return std::make_shared<BoolConnectiveExpr>(expr->kind(), std::move(terms));
    }
    case ExprKind::kNot: {
      ExprPtr inner = Simplify(static_cast<const NotExpr&>(*expr).input());
      if (inner->kind() == ExprKind::kNot) {
        return static_cast<const NotExpr&>(*inner).input();
      }
      if (IsBoolLiteral(inner, true)) return Lit(false);
      if (IsBoolLiteral(inner, false)) return Lit(true);
      return Not(std::move(inner));
    }
    default:
      return expr;
  }
}

}  // namespace snowprune
