#include "expr/expr.h"

#include <algorithm>

namespace snowprune {

const char* ToString(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd: return "+";
    case ArithOp::kSub: return "-";
    case ArithOp::kMul: return "*";
    case ArithOp::kDiv: return "/";
  }
  return "?";
}

std::string ArithExpr::ToString() const {
  return "(" + left_->ToString() + " " + snowprune::ToString(op_) + " " +
         right_->ToString() + ")";
}

std::string CompareExpr::ToString() const {
  return "(" + left_->ToString() + " " + snowprune::ToString(op_) + " " +
         right_->ToString() + ")";
}

std::string BoolConnectiveExpr::ToString() const {
  const char* sep = kind() == ExprKind::kAnd ? " AND " : " OR ";
  std::string s = "(";
  for (size_t i = 0; i < terms_.size(); ++i) {
    if (i > 0) s += sep;
    s += terms_[i]->ToString();
  }
  return s + ")";
}

std::string IfExpr::ToString() const {
  return "IF(" + cond_->ToString() + ", " + then_->ToString() + ", " +
         else_->ToString() + ")";
}

std::string InListExpr::ToString() const {
  std::string s = input_->ToString() + " IN (";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) s += ", ";
    s += values_[i].ToString();
  }
  return s + ")";
}

Status BindExpr(const ExprPtr& expr, const Schema& schema) {
  if (!expr) return Status::InvalidArgument("null expression");
  if (expr->kind() == ExprKind::kColumnRef) {
    auto* ref = static_cast<ColumnRefExpr*>(expr.get());
    auto idx = schema.FindColumn(ref->name());
    if (!idx) return Status::NotFound("no column named " + ref->name());
    ref->set_index(*idx);
    return Status::OK();
  }
  for (const auto& child : expr->children()) {
    Status s = BindExpr(child, schema);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

namespace {

void CollectColumns(const ExprPtr& expr, std::vector<std::string>* out) {
  if (expr->kind() == ExprKind::kColumnRef) {
    const auto* ref = static_cast<const ColumnRefExpr*>(expr.get());
    if (std::find(out->begin(), out->end(), ref->name()) == out->end()) {
      out->push_back(ref->name());
    }
    return;
  }
  for (const auto& child : expr->children()) CollectColumns(child, out);
}

}  // namespace

std::vector<std::string> ReferencedColumns(const ExprPtr& expr) {
  std::vector<std::string> out;
  if (expr) CollectColumns(expr, &out);
  return out;
}

}  // namespace snowprune
