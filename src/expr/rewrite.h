#ifndef SNOWPRUNE_EXPR_REWRITE_H_
#define SNOWPRUNE_EXPR_REWRITE_H_

#include "expr/expr.h"

namespace snowprune {

/// Imprecise filter rewrite (§3.1): widens predicates into forms that are
/// cheap(er) to prune with, at the cost of precision. The result is used by
/// the *pruning* pass only — never for query evaluation and never for
/// fully-matching identification (widened predicates over-admit rows).
///
/// Rewrites applied:
///   x LIKE 'exact'     -> x = 'exact'
///   x LIKE 'p%'        -> STARTSWITH(x, 'p')        (precise)
///   x LIKE 'p%s...'    -> STARTSWITH(x, 'p')        (widened)
///   x LIKE '%...'      -> TRUE                      (unprunable)
///   NOT/AND/OR/IF      -> recursed into
ExprPtr RewriteForPruning(const ExprPtr& expr);

/// Builds the §4.2 inverted predicate used by the second (fully-matching)
/// pruning pass. The inversion is "IS NOT TRUE" (true iff the original
/// predicate is FALSE *or NULL*), pushed down through AND/OR by De Morgan:
/// a partition pruned under the inverted predicate provably contains only
/// rows where the original predicate is TRUE.
ExprPtr BuildInvertedPredicate(const ExprPtr& expr);

/// Light algebraic cleanup: flattens nested AND/OR, removes neutral
/// elements, folds NOT(NOT(x)) and boolean literals. Used to keep pruning
/// trees small before metrics are attached.
ExprPtr Simplify(const ExprPtr& expr);

}  // namespace snowprune

#endif  // SNOWPRUNE_EXPR_REWRITE_H_
