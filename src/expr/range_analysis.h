#ifndef SNOWPRUNE_EXPR_RANGE_ANALYSIS_H_
#define SNOWPRUNE_EXPR_RANGE_ANALYSIS_H_

#include <string>
#include <vector>

#include "common/interval.h"
#include "expr/expr.h"
#include "storage/column.h"

namespace snowprune {

/// The set of row-level outcomes a predicate can take within one partition,
/// derived from zone-map metadata only. This is SQL three-valued logic
/// lifted to sets: each flag says whether *some* row of the partition may
/// produce that outcome.
///
/// Pruning reads it as:
///   !can_true                          -> not matching (prunable, §3)
///   can_true && !can_false && !can_null -> fully matching (§4.2)
///   otherwise                           -> partially matching
struct BoolRange {
  bool can_true = true;
  bool can_false = true;
  bool can_null = true;

  /// Nothing known — partition must be kept, never fully matching.
  static BoolRange Unknown() { return BoolRange{}; }
  /// The predicate is `b` on every row.
  static BoolRange Exactly(bool b) { return BoolRange{b, !b, false}; }
  /// The predicate is NULL on every row.
  static BoolRange AlwaysNull() { return BoolRange{false, false, true}; }

  bool prunable() const { return !can_true; }
  bool fully_matching() const { return can_true && !can_false && !can_null; }

  std::string ToString() const;
};

/// Row-correlation-agnostic Kleene combinators over outcome sets. These are
/// conservative (they may report a superset of reachable outcomes), which
/// preserves the no-false-negative pruning invariant.
BoolRange AndRanges(const BoolRange& a, const BoolRange& b);
BoolRange OrRanges(const BoolRange& a, const BoolRange& b);
BoolRange NotRange(const BoolRange& a);
/// Outcomes of "x IS NOT TRUE" (never NULL).
BoolRange NotTrueRange(const BoolRange& a);

/// Outcomes of `a op b` where the operands range over the given intervals.
BoolRange CompareRanges(const Interval& a, CompareOp op, const Interval& b);

/// Derives the value range of an arbitrary (possibly non-boolean) expression
/// for a partition described by `stats` (one ColumnStats per schema column,
/// indexed by the bound column index). This implements §3.1's "every
/// function must provide a mechanism to derive transformed min/max ranges".
Interval DeriveInterval(const Expr& expr, const std::vector<ColumnStats>& stats);

/// Analyzes a predicate against a partition's zone maps. The single entry
/// point used by every pruning technique.
BoolRange AnalyzePredicate(const Expr& expr,
                           const std::vector<ColumnStats>& stats);

}  // namespace snowprune

#endif  // SNOWPRUNE_EXPR_RANGE_ANALYSIS_H_
