#include "expr/evaluator.h"

#include <cassert>

#include "expr/like.h"

namespace snowprune {

namespace {

Value EvalArith(const ArithExpr& e, const MicroPartition& part, size_t row) {
  Value l = EvalScalar(*e.left(), part, row);
  Value r = EvalScalar(*e.right(), part, row);
  if (l.is_null() || r.is_null()) return Value::Null();
  if (!l.is_numeric() || !r.is_numeric()) return Value::Null();
  bool both_int = l.is_int64() && r.is_int64();
  switch (e.op()) {
    case ArithOp::kAdd:
      if (both_int) {
        int64_t out;
        if (!__builtin_add_overflow(l.int64_value(), r.int64_value(), &out)) {
          return Value(out);
        }
      }
      return Value(l.AsDouble() + r.AsDouble());
    case ArithOp::kSub:
      if (both_int) {
        int64_t out;
        if (!__builtin_sub_overflow(l.int64_value(), r.int64_value(), &out)) {
          return Value(out);
        }
      }
      return Value(l.AsDouble() - r.AsDouble());
    case ArithOp::kMul:
      if (both_int) {
        int64_t out;
        if (!__builtin_mul_overflow(l.int64_value(), r.int64_value(), &out)) {
          return Value(out);
        }
      }
      return Value(l.AsDouble() * r.AsDouble());
    case ArithOp::kDiv: {
      double d = r.AsDouble();
      if (d == 0.0) return Value::Null();
      return Value(l.AsDouble() / d);
    }
  }
  return Value::Null();
}

Value EvalCompare(const CompareExpr& e, const MicroPartition& part,
                  size_t row) {
  Value l = EvalScalar(*e.left(), part, row);
  Value r = EvalScalar(*e.right(), part, row);
  if (l.is_null() || r.is_null()) return Value::Null();
  // Incompatible kinds (e.g. string vs numeric) compare to NULL rather than
  // raising; plans built through the typed PlanBuilder never hit this.
  bool comparable = (l.is_string() == r.is_string()) &&
                    (l.is_bool() == r.is_bool());
  if (!comparable) return Value::Null();
  int c = Value::Compare(l, r);
  bool result = false;
  switch (e.op()) {
    case CompareOp::kEq: result = c == 0; break;
    case CompareOp::kNe: result = c != 0; break;
    case CompareOp::kLt: result = c < 0; break;
    case CompareOp::kLe: result = c <= 0; break;
    case CompareOp::kGt: result = c > 0; break;
    case CompareOp::kGe: result = c >= 0; break;
  }
  return Value(result);
}

Value EvalConnective(const BoolConnectiveExpr& e, const MicroPartition& part,
                     size_t row) {
  const bool is_and = e.kind() == ExprKind::kAnd;
  bool saw_null = false;
  for (const auto& term : e.terms()) {
    Value v = EvalScalar(*term, part, row);
    if (v.is_null()) {
      saw_null = true;
      continue;
    }
    bool b = v.bool_value();
    if (is_and && !b) return Value(false);   // FALSE dominates AND
    if (!is_and && b) return Value(true);    // TRUE dominates OR
  }
  if (saw_null) return Value::Null();
  return Value(is_and);
}

}  // namespace

Value EvalScalar(const Expr& expr, const MicroPartition& part, size_t row) {
  switch (expr.kind()) {
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      assert(ref.bound());
      return part.column(ref.index()).ValueAt(row);
    }
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(expr).value();
    case ExprKind::kArith:
      return EvalArith(static_cast<const ArithExpr&>(expr), part, row);
    case ExprKind::kCompare:
      return EvalCompare(static_cast<const CompareExpr&>(expr), part, row);
    case ExprKind::kAnd:
    case ExprKind::kOr:
      return EvalConnective(static_cast<const BoolConnectiveExpr&>(expr), part,
                            row);
    case ExprKind::kNot: {
      Value v = EvalScalar(*static_cast<const NotExpr&>(expr).input(), part, row);
      if (v.is_null()) return Value::Null();
      return Value(!v.bool_value());
    }
    case ExprKind::kNotTrue: {
      Value v = EvalScalar(*static_cast<const NotTrueExpr&>(expr).input(), part,
                           row);
      return Value(!(!v.is_null() && v.bool_value()));
    }
    case ExprKind::kIf: {
      const auto& e = static_cast<const IfExpr&>(expr);
      Value c = EvalScalar(*e.cond(), part, row);
      bool take_then = !c.is_null() && c.bool_value();
      return EvalScalar(take_then ? *e.then_expr() : *e.else_expr(), part, row);
    }
    case ExprKind::kLike: {
      const auto& e = static_cast<const LikeExpr&>(expr);
      Value v = EvalScalar(*e.input(), part, row);
      if (v.is_null()) return Value::Null();
      if (!v.is_string()) return Value::Null();
      return Value(LikeMatch(v.string_value(), e.pattern()));
    }
    case ExprKind::kStartsWith: {
      const auto& e = static_cast<const StartsWithExpr&>(expr);
      Value v = EvalScalar(*e.input(), part, row);
      if (v.is_null()) return Value::Null();
      if (!v.is_string()) return Value::Null();
      const std::string& s = v.string_value();
      return Value(s.compare(0, e.prefix().size(), e.prefix()) == 0);
    }
    case ExprKind::kInList: {
      const auto& e = static_cast<const InListExpr&>(expr);
      Value v = EvalScalar(*e.input(), part, row);
      if (v.is_null()) return Value::Null();
      for (const auto& cand : e.values()) {
        if (!cand.is_null() && (cand.is_string() == v.is_string()) &&
            (cand.is_bool() == v.is_bool()) && Value::Compare(v, cand) == 0) {
          return Value(true);
        }
      }
      return Value(false);
    }
    case ExprKind::kIsNull: {
      const auto& e = static_cast<const IsNullExpr&>(expr);
      Value v = EvalScalar(*e.input(), part, row);
      bool is_null = v.is_null();
      return Value(e.negate() ? !is_null : is_null);
    }
  }
  return Value::Null();
}

std::optional<bool> EvalPredicate(const Expr& expr,
                                  const MicroPartition& partition, size_t row) {
  Value v = EvalScalar(expr, partition, row);
  if (v.is_null()) return std::nullopt;
  return v.bool_value();
}

std::vector<uint8_t> EvalPredicateMask(const Expr& expr,
                                       const MicroPartition& partition) {
  std::vector<uint8_t> mask(partition.row_count(), 0);
  for (size_t i = 0; i < mask.size(); ++i) {
    auto r = EvalPredicate(expr, partition, i);
    mask[i] = (r.has_value() && *r) ? 1 : 0;
  }
  return mask;
}

int64_t CountMatches(const Expr& expr, const MicroPartition& partition) {
  int64_t n = 0;
  for (uint8_t m : EvalPredicateMask(expr, partition)) n += m;
  return n;
}

}  // namespace snowprune
