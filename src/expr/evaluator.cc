#include "expr/evaluator.h"

#include <algorithm>
#include <cassert>

#include "expr/like.h"

namespace snowprune {

namespace {

Value EvalArith(const ArithExpr& e, const MicroPartition& part, size_t row) {
  Value l = EvalScalar(*e.left(), part, row);
  Value r = EvalScalar(*e.right(), part, row);
  if (l.is_null() || r.is_null()) return Value::Null();
  if (!l.is_numeric() || !r.is_numeric()) return Value::Null();
  bool both_int = l.is_int64() && r.is_int64();
  switch (e.op()) {
    case ArithOp::kAdd:
      if (both_int) {
        int64_t out;
        if (!__builtin_add_overflow(l.int64_value(), r.int64_value(), &out)) {
          return Value(out);
        }
      }
      return Value(l.AsDouble() + r.AsDouble());
    case ArithOp::kSub:
      if (both_int) {
        int64_t out;
        if (!__builtin_sub_overflow(l.int64_value(), r.int64_value(), &out)) {
          return Value(out);
        }
      }
      return Value(l.AsDouble() - r.AsDouble());
    case ArithOp::kMul:
      if (both_int) {
        int64_t out;
        if (!__builtin_mul_overflow(l.int64_value(), r.int64_value(), &out)) {
          return Value(out);
        }
      }
      return Value(l.AsDouble() * r.AsDouble());
    case ArithOp::kDiv: {
      double d = r.AsDouble();
      if (d == 0.0) return Value::Null();
      return Value(l.AsDouble() / d);
    }
  }
  return Value::Null();
}

Value EvalCompare(const CompareExpr& e, const MicroPartition& part,
                  size_t row) {
  Value l = EvalScalar(*e.left(), part, row);
  Value r = EvalScalar(*e.right(), part, row);
  if (l.is_null() || r.is_null()) return Value::Null();
  // Incompatible kinds (e.g. string vs numeric) compare to NULL rather than
  // raising; plans built through the typed PlanBuilder never hit this.
  bool comparable = (l.is_string() == r.is_string()) &&
                    (l.is_bool() == r.is_bool());
  if (!comparable) return Value::Null();
  int c = Value::Compare(l, r);
  bool result = false;
  switch (e.op()) {
    case CompareOp::kEq: result = c == 0; break;
    case CompareOp::kNe: result = c != 0; break;
    case CompareOp::kLt: result = c < 0; break;
    case CompareOp::kLe: result = c <= 0; break;
    case CompareOp::kGt: result = c > 0; break;
    case CompareOp::kGe: result = c >= 0; break;
  }
  return Value(result);
}

Value EvalConnective(const BoolConnectiveExpr& e, const MicroPartition& part,
                     size_t row) {
  const bool is_and = e.kind() == ExprKind::kAnd;
  bool saw_null = false;
  for (const auto& term : e.terms()) {
    Value v = EvalScalar(*term, part, row);
    if (v.is_null()) {
      saw_null = true;
      continue;
    }
    bool b = v.bool_value();
    if (is_and && !b) return Value(false);   // FALSE dominates AND
    if (!is_and && b) return Value(true);    // TRUE dominates OR
  }
  if (saw_null) return Value::Null();
  return Value(is_and);
}

// ---------------------------------------------------------------------------
// Vectorized predicate evaluation (the ColumnBatch hot path)
// ---------------------------------------------------------------------------

/// The set of rows a kernel must evaluate. `idx == nullptr` means the
/// identity set 0..count-1 (a whole partition); otherwise `idx` lists
/// physical row indexes. Selection-aware connectives shrink this set as
/// terms decide rows; all mask/lane buffers stay indexed by physical row,
/// so kernels write (and later read) only the listed rows.
struct RowSpan {
  const uint32_t* idx = nullptr;
  size_t count = 0;

  static RowSpan All(size_t n) { return RowSpan{nullptr, n}; }
  static RowSpan Of(const std::vector<uint32_t>& rows) {
    return RowSpan{rows.data(), rows.size()};
  }
  size_t size() const { return count; }
};

template <typename Fn>
inline void ForEachRow(const RowSpan& rows, Fn&& fn) {
  if (rows.idx == nullptr) {
    for (uint32_t r = 0; r < rows.count; ++r) fn(r);
  } else {
    for (size_t i = 0; i < rows.count; ++i) fn(rows.idx[i]);
  }
}

// Scratch-pool accessors (AcquireMask/AcquireRows/AcquireLanes and their
// Releases) live in evaluator.h, shared with the bytecode executor.

void EvalMask(const Expr& expr, const MicroPartition& part,
              const RowSpan& rows, std::vector<uint8_t>* out,
              EvalScratch* scratch);

/// Per-row scalar fallback for the rare shapes the vectorized evaluator does
/// not specialize (string/bool-valued subexpressions in value position,
/// unbound columns). Boxes only the values this subtree touches, and only
/// for the rows still alive; the batch's data flow stays unboxed.
void FallbackMask(const Expr& expr, const MicroPartition& part,
                  const RowSpan& rows, std::vector<uint8_t>* out) {
  ForEachRow(rows, [&](uint32_t r) {
    Value v = EvalScalar(expr, part, r);
    (*out)[r] = v.is_null() ? kPredNull
                            : (v.bool_value() ? kPredTrue : kPredFalse);
  });
}

const ColumnVector* AsBoundColumn(const Expr& e, const MicroPartition& part) {
  if (e.kind() != ExprKind::kColumnRef) return nullptr;
  const auto& ref = static_cast<const ColumnRefExpr&>(e);
  if (!ref.bound() || ref.index() >= part.num_columns()) return nullptr;
  return &part.column(ref.index());
}

const Value* AsLiteral(const Expr& e) {
  if (e.kind() != ExprKind::kLiteral) return nullptr;
  return &static_cast<const LiteralExpr&>(e).value();
}

bool ApplyCmp(CompareOp op, int c) {
  switch (op) {
    case CompareOp::kEq: return c == 0;
    case CompareOp::kNe: return c != 0;
    case CompareOp::kLt: return c < 0;
    case CompareOp::kLe: return c <= 0;
    case CompareOp::kGt: return c > 0;
    case CompareOp::kGe: return c >= 0;
  }
  return false;
}

int CmpDouble(double x, double y) { return x < y ? -1 : (x > y ? 1 : 0); }
int CmpInt(int64_t x, int64_t y) { return x < y ? -1 : (x > y ? 1 : 0); }

void FillRows(const RowSpan& rows, uint8_t v, std::vector<uint8_t>* out) {
  ForEachRow(rows, [&](uint32_t r) { (*out)[r] = v; });
}

/// Column-vs-literal comparison, typed loops per (column type, literal
/// kind). `flip` means the literal was the *left* operand. Mirrors
/// EvalCompare exactly: NULL on either side → NULL, cross-kind (string vs
/// numeric, bool vs anything else) → NULL.
void CompareColumnLiteral(const ColumnVector& col, const Value& lit,
                          CompareOp op, bool flip, const RowSpan& rows,
                          std::vector<uint8_t>* out) {
  const auto& nulls = col.null_mask();
  auto run = [&](auto&& cmp_at) {
    ForEachRow(rows, [&](uint32_t r) {
      if (nulls[r]) {
        (*out)[r] = kPredNull;
        return;
      }
      int c = cmp_at(r);
      if (flip) c = -c;
      (*out)[r] = ApplyCmp(op, c) ? kPredTrue : kPredFalse;
    });
  };
  switch (col.type()) {
    case DataType::kInt64:
      if (lit.is_int64()) {
        const int64_t y = lit.int64_value();
        const auto& xs = col.int64_data();
        run([&](size_t r) { return CmpInt(xs[r], y); });
        return;
      }
      if (lit.is_float64()) {
        const double y = lit.float64_value();
        const auto& xs = col.int64_data();
        run([&](size_t r) { return CmpDouble(static_cast<double>(xs[r]), y); });
        return;
      }
      break;
    case DataType::kFloat64:
      if (lit.is_numeric()) {
        const double y = lit.AsDouble();
        const auto& xs = col.float64_data();
        run([&](size_t r) { return CmpDouble(xs[r], y); });
        return;
      }
      break;
    case DataType::kString:
      if (lit.is_string()) {
        const std::string& y = lit.string_value();
        const auto& xs = col.string_data();
        run([&](size_t r) { return xs[r].compare(y); });
        return;
      }
      break;
    case DataType::kBool:
      if (lit.is_bool()) {
        const int y = lit.bool_value() ? 1 : 0;
        const auto& xs = col.bool_data();
        run([&](size_t r) { return static_cast<int>(xs[r]) - y; });
        return;
      }
      break;
  }
  // Cross-kind comparison: NULL for every row, matching EvalCompare.
  FillRows(rows, kPredNull, out);
}

void CompareColumnColumn(const ColumnVector& a, const ColumnVector& b,
                         CompareOp op, const RowSpan& rows,
                         std::vector<uint8_t>* out) {
  const auto& an = a.null_mask();
  const auto& bn = b.null_mask();
  auto run = [&](auto&& cmp_at) {
    ForEachRow(rows, [&](uint32_t r) {
      if (an[r] || bn[r]) {
        (*out)[r] = kPredNull;
        return;
      }
      (*out)[r] = ApplyCmp(op, cmp_at(r)) ? kPredTrue : kPredFalse;
    });
  };
  const bool a_num = a.type() == DataType::kInt64 || a.type() == DataType::kFloat64;
  const bool b_num = b.type() == DataType::kInt64 || b.type() == DataType::kFloat64;
  if (a_num && b_num) {
    if (a.type() == DataType::kInt64 && b.type() == DataType::kInt64) {
      const auto& xs = a.int64_data();
      const auto& ys = b.int64_data();
      run([&](size_t r) { return CmpInt(xs[r], ys[r]); });
    } else {
      auto at = [](const ColumnVector& c, size_t r) {
        return c.type() == DataType::kInt64
                   ? static_cast<double>(c.int64_data()[r])
                   : c.float64_data()[r];
      };
      run([&](size_t r) { return CmpDouble(at(a, r), at(b, r)); });
    }
    return;
  }
  if (a.type() == DataType::kString && b.type() == DataType::kString) {
    const auto& xs = a.string_data();
    const auto& ys = b.string_data();
    run([&](size_t r) { return xs[r].compare(ys[r]); });
    return;
  }
  if (a.type() == DataType::kBool && b.type() == DataType::kBool) {
    const auto& xs = a.bool_data();
    const auto& ys = b.bool_data();
    run([&](size_t r) {
      return static_cast<int>(xs[r]) - static_cast<int>(ys[r]);
    });
    return;
  }
  FillRows(rows, kPredNull, out);
}

// ---------------------------------------------------------------------------
// Typed arithmetic / IF value lanes
// ---------------------------------------------------------------------------

/// One row of arithmetic over lane-tagged operands; mirrors EvalArith
/// exactly: int64 ops with per-row overflow fallback to double, division
/// always in double with a divide-by-zero → NULL check on the (converted)
/// divisor. Writes out->{kind,i64,f64}[r].
inline void ArithCell(ArithOp op, const NumericLanes& l, const NumericLanes& r,
                      uint32_t row, NumericLanes* out) {
  const uint8_t lk = l.kind[row], rk = r.kind[row];
  if (lk == kLaneNull || rk == kLaneNull) {
    out->kind[row] = kLaneNull;
    return;
  }
  const bool both_int = lk == kLaneInt64 && rk == kLaneInt64;
  const double ld =
      lk == kLaneInt64 ? static_cast<double>(l.i64[row]) : l.f64[row];
  const double rd =
      rk == kLaneInt64 ? static_cast<double>(r.i64[row]) : r.f64[row];
  switch (op) {
    case ArithOp::kAdd:
      if (both_int) {
        int64_t v;
        if (!__builtin_add_overflow(l.i64[row], r.i64[row], &v)) {
          out->kind[row] = kLaneInt64;
          out->i64[row] = v;
          return;
        }
      }
      out->kind[row] = kLaneDouble;
      out->f64[row] = ld + rd;
      return;
    case ArithOp::kSub:
      if (both_int) {
        int64_t v;
        if (!__builtin_sub_overflow(l.i64[row], r.i64[row], &v)) {
          out->kind[row] = kLaneInt64;
          out->i64[row] = v;
          return;
        }
      }
      out->kind[row] = kLaneDouble;
      out->f64[row] = ld - rd;
      return;
    case ArithOp::kMul:
      if (both_int) {
        int64_t v;
        if (!__builtin_mul_overflow(l.i64[row], r.i64[row], &v)) {
          out->kind[row] = kLaneInt64;
          out->i64[row] = v;
          return;
        }
      }
      out->kind[row] = kLaneDouble;
      out->f64[row] = ld * rd;
      return;
    case ArithOp::kDiv:
      if (rd == 0.0) {
        out->kind[row] = kLaneNull;
        return;
      }
      out->kind[row] = kLaneDouble;
      out->f64[row] = ld / rd;
      return;
  }
  out->kind[row] = kLaneNull;
}

/// Evaluates a numeric *value* subtree (column ref, literal, arithmetic,
/// IF) into typed lanes for the listed rows. Returns false when the subtree
/// has a shape the typed path does not cover (string/bool inputs, unbound
/// columns, any other node kind); the caller then falls back to scalar
/// evaluation and `out` is unspecified.
bool EvalNumericLanes(const Expr& expr, const MicroPartition& part,
                      const RowSpan& rows, NumericLanes* out,
                      EvalScratch* scratch) {
  switch (expr.kind()) {
    case ExprKind::kColumnRef: {
      const ColumnVector* col = AsBoundColumn(expr, part);
      if (col == nullptr) return false;
      const auto& nulls = col->null_mask();
      if (col->type() == DataType::kInt64) {
        const auto& xs = col->int64_data();
        ForEachRow(rows, [&](uint32_t r) {
          out->kind[r] = nulls[r] ? kLaneNull : kLaneInt64;
          out->i64[r] = xs[r];
        });
        return true;
      }
      if (col->type() == DataType::kFloat64) {
        const auto& xs = col->float64_data();
        ForEachRow(rows, [&](uint32_t r) {
          out->kind[r] = nulls[r] ? kLaneNull : kLaneDouble;
          out->f64[r] = xs[r];
        });
        return true;
      }
      return false;  // bool/string columns are not numeric values
    }
    case ExprKind::kLiteral: {
      const Value& v = static_cast<const LiteralExpr&>(expr).value();
      if (v.is_null()) {
        ForEachRow(rows, [&](uint32_t r) { out->kind[r] = kLaneNull; });
        return true;
      }
      if (v.is_int64()) {
        const int64_t x = v.int64_value();
        ForEachRow(rows, [&](uint32_t r) {
          out->kind[r] = kLaneInt64;
          out->i64[r] = x;
        });
        return true;
      }
      if (v.is_float64()) {
        const double x = v.float64_value();
        ForEachRow(rows, [&](uint32_t r) {
          out->kind[r] = kLaneDouble;
          out->f64[r] = x;
        });
        return true;
      }
      return false;
    }
    case ExprKind::kArith: {
      const auto& e = static_cast<const ArithExpr&>(expr);
      const size_t n = out->kind.size();
      NumericLanes& l = AcquireLanes(scratch, n);
      NumericLanes& r = AcquireLanes(scratch, n);
      const bool ok = EvalNumericLanes(*e.left(), part, rows, &l, scratch) &&
                      EvalNumericLanes(*e.right(), part, rows, &r, scratch);
      if (ok) {
        const ArithOp op = e.op();
        ForEachRow(rows, [&](uint32_t row) { ArithCell(op, l, r, row, out); });
      }
      ReleaseLanes(scratch);
      ReleaseLanes(scratch);
      return ok;
    }
    case ExprKind::kIf: {
      // Split the rows on the vectorized condition mask and evaluate each
      // branch only over its taken rows — both branches write disjoint row
      // sets of the same physically-indexed `out`, exactly the per-row
      // branch selection of the scalar evaluator.
      const auto& e = static_cast<const IfExpr&>(expr);
      const size_t n = out->kind.size();
      std::vector<uint8_t>& cond = AcquireMask(scratch, n);
      EvalMask(*e.cond(), part, rows, &cond, scratch);
      std::vector<uint32_t>& then_rows = AcquireRows(scratch);
      std::vector<uint32_t>& else_rows = AcquireRows(scratch);
      then_rows.clear();
      else_rows.clear();
      ForEachRow(rows, [&](uint32_t r) {
        (cond[r] == kPredTrue ? then_rows : else_rows).push_back(r);
      });
      const bool ok =
          EvalNumericLanes(*e.then_expr(), part, RowSpan::Of(then_rows), out,
                           scratch) &&
          EvalNumericLanes(*e.else_expr(), part, RowSpan::Of(else_rows), out,
                           scratch);
      ReleaseRows(scratch);
      ReleaseRows(scratch);
      ReleaseMask(scratch);
      return ok;
    }
    default:
      return false;
  }
}

void CompareMask(const CompareExpr& e, const MicroPartition& part,
                 const RowSpan& rows, std::vector<uint8_t>* out,
                 EvalScratch* scratch) {
  const ColumnVector* lc = AsBoundColumn(*e.left(), part);
  const ColumnVector* rc = AsBoundColumn(*e.right(), part);
  const Value* lv = AsLiteral(*e.left());
  const Value* rv = AsLiteral(*e.right());
  if (lc != nullptr && rv != nullptr) {
    if (rv->is_null()) {
      FillRows(rows, kPredNull, out);
      return;
    }
    CompareColumnLiteral(*lc, *rv, e.op(), /*flip=*/false, rows, out);
    return;
  }
  if (lv != nullptr && rc != nullptr) {
    if (lv->is_null()) {
      FillRows(rows, kPredNull, out);
      return;
    }
    CompareColumnLiteral(*rc, *lv, e.op(), /*flip=*/true, rows, out);
    return;
  }
  if (lc != nullptr && rc != nullptr) {
    CompareColumnColumn(*lc, *rc, e.op(), rows, out);
    return;
  }
  // Arithmetic / IF operand(s): typed value lanes instead of per-row boxing.
  // Mirrors EvalCompare: NULL operand → NULL; lanes are always numeric, so
  // the operands are always comparable, int64 pairs compare exactly and
  // mixed pairs through double.
  {
    const size_t n = part.row_count();
    NumericLanes& l = AcquireLanes(scratch, n);
    NumericLanes& r = AcquireLanes(scratch, n);
    const bool ok = EvalNumericLanes(*e.left(), part, rows, &l, scratch) &&
                    EvalNumericLanes(*e.right(), part, rows, &r, scratch);
    if (ok) {
      const CompareOp op = e.op();
      ForEachRow(rows, [&](uint32_t row) {
        const uint8_t lk = l.kind[row], rk = r.kind[row];
        if (lk == kLaneNull || rk == kLaneNull) {
          (*out)[row] = kPredNull;
          return;
        }
        int c;
        if (lk == kLaneInt64 && rk == kLaneInt64) {
          c = CmpInt(l.i64[row], r.i64[row]);
        } else {
          c = CmpDouble(
              lk == kLaneInt64 ? static_cast<double>(l.i64[row]) : l.f64[row],
              rk == kLaneInt64 ? static_cast<double>(r.i64[row]) : r.f64[row]);
        }
        (*out)[row] = ApplyCmp(op, c) ? kPredTrue : kPredFalse;
      });
    }
    ReleaseLanes(scratch);
    ReleaseLanes(scratch);
    if (ok) return;
  }
  FallbackMask(e, part, rows, out);
}

/// Selection-aware N-ary AND/OR. A row is *decided* once a term proves it
/// FALSE (AND) or TRUE (OR) — no later term can change it, so it is dropped
/// from the active-row set and every subsequent term evaluates only the
/// rows still in play. NULL does not decide: a NULL row can still become
/// FALSE under AND (or TRUE under OR), so it stays active. The surviving
/// merge is exactly the original full-width merge restricted to active
/// rows, hence bit-identical outcomes.
void ConnectiveMask(const BoolConnectiveExpr& e, const MicroPartition& part,
                    const RowSpan& rows, std::vector<uint8_t>* out,
                    EvalScratch* scratch) {
  const bool is_and = e.kind() == ExprKind::kAnd;
  const uint8_t decided = is_and ? kPredFalse : kPredTrue;
  FillRows(rows, is_and ? kPredTrue : kPredFalse, out);
  // One term buffer + one active-row list per connective nesting level,
  // borrowed from the scratch for the duration of this connective (the
  // deques keep the references stable while nested terms extend the pools).
  std::vector<uint8_t>& term = AcquireMask(scratch, part.row_count());
  std::vector<uint32_t>& active = AcquireRows(scratch);
  active.resize(rows.size());
  RowSpan cur = rows;
  for (const auto& t : e.terms()) {
    if (cur.size() == 0) break;  // every remaining row is decided
    EvalMask(*t, part, cur, &term, scratch);
    size_t kept = 0;
    ForEachRow(cur, [&](uint32_t r) {
      uint8_t& o = (*out)[r];
      // Rows decided in an earlier round (possible when an identity span
      // was retained) must not re-enter the active list.
      if (o == decided) return;
      if (is_and) {
        if (term[r] == kPredFalse) {
          o = kPredFalse;  // FALSE dominates AND
          return;
        }
        if (term[r] == kPredNull && o == kPredTrue) o = kPredNull;
      } else {
        if (term[r] == kPredTrue) {
          o = kPredTrue;  // TRUE dominates OR
          return;
        }
        if (term[r] == kPredNull && o == kPredFalse) o = kPredNull;
      }
      // In-place compaction: `cur` may alias `active`, but kept never
      // outruns the read cursor.
      active[kept++] = r;
    });
    if (cur.idx == nullptr && kept * 2 >= cur.count) {
      // Most rows still undecided: stay on the contiguous identity span.
      // Decided rows get re-evaluated by later terms, which is harmless —
      // the merge above is monotone (FALSE under AND and TRUE under OR
      // absorb) — and full-width sequential loops beat an index-list
      // gather until the survivor fraction drops below about half.
      continue;
    }
    cur = RowSpan{active.data(), kept};
  }
  ReleaseRows(scratch);
  ReleaseMask(scratch);
}

void InListMask(const InListExpr& e, const MicroPartition& part,
                const RowSpan& rows, std::vector<uint8_t>* out) {
  const ColumnVector* col = AsBoundColumn(*e.input(), part);
  if (col == nullptr) {
    FallbackMask(e, part, rows, out);
    return;
  }
  const auto& nulls = col->null_mask();
  const auto& vals = e.values();
  auto run = [&](auto&& match_at) {
    ForEachRow(rows, [&](uint32_t r) {
      if (nulls[r]) {
        (*out)[r] = kPredNull;
        return;
      }
      (*out)[r] = match_at(r) ? kPredTrue : kPredFalse;
    });
  };
  // "Equal" as Value::Compare reports 0 (neither less nor greater), so the
  // scalar IN evaluation and this path agree even on NaN list values.
  auto cmp_equal = [](double x, double y) { return !(x < y) && !(x > y); };
  switch (col->type()) {
    case DataType::kInt64: {
      const auto& xs = col->int64_data();
      run([&](size_t r) {
        for (const Value& cand : vals) {
          if (cand.is_null() || cand.is_string() || cand.is_bool()) continue;
          if (cand.is_int64() ? xs[r] == cand.int64_value()
                              : cmp_equal(static_cast<double>(xs[r]),
                                          cand.float64_value())) {
            return true;
          }
        }
        return false;
      });
      return;
    }
    case DataType::kFloat64: {
      const auto& xs = col->float64_data();
      run([&](size_t r) {
        for (const Value& cand : vals) {
          if (cand.is_null() || cand.is_string() || cand.is_bool()) continue;
          if (cmp_equal(xs[r], cand.AsDouble())) return true;
        }
        return false;
      });
      return;
    }
    case DataType::kString: {
      const auto& xs = col->string_data();
      run([&](size_t r) {
        for (const Value& cand : vals) {
          if (cand.is_string() && xs[r] == cand.string_value()) return true;
        }
        return false;
      });
      return;
    }
    case DataType::kBool: {
      const auto& xs = col->bool_data();
      run([&](size_t r) {
        for (const Value& cand : vals) {
          if (cand.is_bool() && (xs[r] != 0) == cand.bool_value()) return true;
        }
        return false;
      });
      return;
    }
  }
  FallbackMask(e, part, rows, out);
}

/// LIKE / STARTSWITH over a string column; non-string columns yield NULL
/// for every row (matching the scalar evaluator's !is_string() path).
template <typename MatchFn>
void StringMatchMask(const Expr& input, const MicroPartition& part,
                     MatchFn match, const Expr& whole, const RowSpan& rows,
                     std::vector<uint8_t>* out) {
  const ColumnVector* col = AsBoundColumn(input, part);
  if (col == nullptr) {
    FallbackMask(whole, part, rows, out);
    return;
  }
  if (col->type() != DataType::kString) {
    FillRows(rows, kPredNull, out);
    return;
  }
  const auto& nulls = col->null_mask();
  const auto& xs = col->string_data();
  ForEachRow(rows, [&](uint32_t r) {
    (*out)[r] = nulls[r] ? kPredNull
                         : (match(xs[r]) ? kPredTrue : kPredFalse);
  });
}

void EvalMask(const Expr& expr, const MicroPartition& part,
              const RowSpan& rows, std::vector<uint8_t>* out,
              EvalScratch* scratch) {
  switch (expr.kind()) {
    case ExprKind::kCompare:
      CompareMask(static_cast<const CompareExpr&>(expr), part, rows, out,
                  scratch);
      return;
    case ExprKind::kAnd:
    case ExprKind::kOr:
      ConnectiveMask(static_cast<const BoolConnectiveExpr&>(expr), part, rows,
                     out, scratch);
      return;
    case ExprKind::kNot: {
      EvalMask(*static_cast<const NotExpr&>(expr).input(), part, rows, out,
               scratch);
      ForEachRow(rows, [&](uint32_t r) {
        uint8_t& m = (*out)[r];
        if (m != kPredNull) m = m == kPredTrue ? kPredFalse : kPredTrue;
      });
      return;
    }
    case ExprKind::kNotTrue: {
      EvalMask(*static_cast<const NotTrueExpr&>(expr).input(), part, rows, out,
               scratch);
      ForEachRow(rows, [&](uint32_t r) {
        uint8_t& m = (*out)[r];
        m = m == kPredTrue ? kPredFalse : kPredTrue;
      });
      return;
    }
    case ExprKind::kIsNull: {
      const auto& e = static_cast<const IsNullExpr&>(expr);
      const ColumnVector* col = AsBoundColumn(*e.input(), part);
      if (col == nullptr) {
        FallbackMask(expr, part, rows, out);
        return;
      }
      const auto& nulls = col->null_mask();
      ForEachRow(rows, [&](uint32_t r) {
        const bool is_null = nulls[r] != 0;
        (*out)[r] =
            (e.negate() ? !is_null : is_null) ? kPredTrue : kPredFalse;
      });
      return;
    }
    case ExprKind::kLike: {
      const auto& e = static_cast<const LikeExpr&>(expr);
      StringMatchMask(
          *e.input(), part,
          [&](const std::string& s) { return LikeMatch(s, e.pattern()); },
          expr, rows, out);
      return;
    }
    case ExprKind::kStartsWith: {
      const auto& e = static_cast<const StartsWithExpr&>(expr);
      StringMatchMask(
          *e.input(), part,
          [&](const std::string& s) {
            return s.compare(0, e.prefix().size(), e.prefix()) == 0;
          },
          expr, rows, out);
      return;
    }
    case ExprKind::kInList:
      InListMask(static_cast<const InListExpr&>(expr), part, rows, out);
      return;
    case ExprKind::kColumnRef: {
      const ColumnVector* col = AsBoundColumn(expr, part);
      if (col != nullptr && col->type() == DataType::kBool) {
        const auto& nulls = col->null_mask();
        const auto& xs = col->bool_data();
        ForEachRow(rows, [&](uint32_t r) {
          (*out)[r] = nulls[r] ? kPredNull
                               : (xs[r] != 0 ? kPredTrue : kPredFalse);
        });
        return;
      }
      FallbackMask(expr, part, rows, out);
      return;
    }
    case ExprKind::kLiteral: {
      const Value& v = static_cast<const LiteralExpr&>(expr).value();
      if (v.is_null()) {
        FillRows(rows, kPredNull, out);
        return;
      }
      if (v.is_bool()) {
        FillRows(rows, v.bool_value() ? kPredTrue : kPredFalse, out);
        return;
      }
      FallbackMask(expr, part, rows, out);
      return;
    }
    case ExprKind::kIf: {
      // Vectorized IF in predicate position: split the rows on the
      // condition mask; each branch (itself a predicate) writes its own
      // disjoint row set of `out` — the scalar evaluator's per-row branch
      // selection, column-at-a-time.
      const auto& e = static_cast<const IfExpr&>(expr);
      std::vector<uint8_t>& cond = AcquireMask(scratch, part.row_count());
      EvalMask(*e.cond(), part, rows, &cond, scratch);
      std::vector<uint32_t>& then_rows = AcquireRows(scratch);
      std::vector<uint32_t>& else_rows = AcquireRows(scratch);
      then_rows.clear();
      else_rows.clear();
      ForEachRow(rows, [&](uint32_t r) {
        (cond[r] == kPredTrue ? then_rows : else_rows).push_back(r);
      });
      EvalMask(*e.then_expr(), part, RowSpan::Of(then_rows), out, scratch);
      EvalMask(*e.else_expr(), part, RowSpan::Of(else_rows), out, scratch);
      ReleaseRows(scratch);
      ReleaseRows(scratch);
      ReleaseMask(scratch);
      return;
    }
    default:
      // kArith as a predicate root: scalar semantics per row.
      FallbackMask(expr, part, rows, out);
      return;
  }
}

}  // namespace

Value EvalScalar(const Expr& expr, const MicroPartition& part, size_t row) {
  switch (expr.kind()) {
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      assert(ref.bound());
      return part.column(ref.index()).ValueAt(row);
    }
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(expr).value();
    case ExprKind::kArith:
      return EvalArith(static_cast<const ArithExpr&>(expr), part, row);
    case ExprKind::kCompare:
      return EvalCompare(static_cast<const CompareExpr&>(expr), part, row);
    case ExprKind::kAnd:
    case ExprKind::kOr:
      return EvalConnective(static_cast<const BoolConnectiveExpr&>(expr), part,
                            row);
    case ExprKind::kNot: {
      Value v = EvalScalar(*static_cast<const NotExpr&>(expr).input(), part, row);
      if (v.is_null()) return Value::Null();
      return Value(!v.bool_value());
    }
    case ExprKind::kNotTrue: {
      Value v = EvalScalar(*static_cast<const NotTrueExpr&>(expr).input(), part,
                           row);
      return Value(!(!v.is_null() && v.bool_value()));
    }
    case ExprKind::kIf: {
      const auto& e = static_cast<const IfExpr&>(expr);
      Value c = EvalScalar(*e.cond(), part, row);
      bool take_then = !c.is_null() && c.bool_value();
      return EvalScalar(take_then ? *e.then_expr() : *e.else_expr(), part, row);
    }
    case ExprKind::kLike: {
      const auto& e = static_cast<const LikeExpr&>(expr);
      Value v = EvalScalar(*e.input(), part, row);
      if (v.is_null()) return Value::Null();
      if (!v.is_string()) return Value::Null();
      return Value(LikeMatch(v.string_value(), e.pattern()));
    }
    case ExprKind::kStartsWith: {
      const auto& e = static_cast<const StartsWithExpr&>(expr);
      Value v = EvalScalar(*e.input(), part, row);
      if (v.is_null()) return Value::Null();
      if (!v.is_string()) return Value::Null();
      const std::string& s = v.string_value();
      return Value(s.compare(0, e.prefix().size(), e.prefix()) == 0);
    }
    case ExprKind::kInList: {
      const auto& e = static_cast<const InListExpr&>(expr);
      Value v = EvalScalar(*e.input(), part, row);
      if (v.is_null()) return Value::Null();
      for (const auto& cand : e.values()) {
        if (!cand.is_null() && (cand.is_string() == v.is_string()) &&
            (cand.is_bool() == v.is_bool()) && Value::Compare(v, cand) == 0) {
          return Value(true);
        }
      }
      return Value(false);
    }
    case ExprKind::kIsNull: {
      const auto& e = static_cast<const IsNullExpr&>(expr);
      Value v = EvalScalar(*e.input(), part, row);
      bool is_null = v.is_null();
      return Value(e.negate() ? !is_null : is_null);
    }
  }
  return Value::Null();
}

std::optional<bool> EvalPredicate(const Expr& expr,
                                  const MicroPartition& partition, size_t row) {
  Value v = EvalScalar(expr, partition, row);
  if (v.is_null()) return std::nullopt;
  return v.bool_value();
}

std::vector<uint8_t> EvalPredicateMask(const Expr& expr,
                                       const MicroPartition& partition) {
  std::vector<uint8_t> mask(partition.row_count(), 0);
  for (size_t i = 0; i < mask.size(); ++i) {
    auto r = EvalPredicate(expr, partition, i);
    mask[i] = (r.has_value() && *r) ? 1 : 0;
  }
  return mask;
}

int64_t CountMatches(const Expr& expr, const MicroPartition& partition) {
  int64_t n = 0;
  for (uint8_t m : EvalPredicateMask(expr, partition)) n += m;
  return n;
}

void EvalPredicateOutcomes(const Expr& expr, const MicroPartition& partition,
                           std::vector<uint8_t>* out) {
  EvalScratch scratch;
  EvalPredicateOutcomes(expr, partition, out, &scratch);
}

void EvalPredicateOutcomes(const Expr& expr, const MicroPartition& partition,
                           std::vector<uint8_t>* out, EvalScratch* scratch) {
  const size_t n = static_cast<size_t>(partition.row_count());
  out->assign(n, kPredFalse);
  EvalMask(expr, partition, RowSpan::All(n), out, scratch);
}

void ComputeSelection(const Expr& expr, const MicroPartition& partition,
                      std::vector<uint32_t>* selection) {
  EvalScratch scratch;
  ComputeSelection(expr, partition, selection, &scratch);
}

void ComputeSelection(const Expr& expr, const MicroPartition& partition,
                      std::vector<uint32_t>* selection, EvalScratch* scratch) {
  selection->clear();
  std::vector<uint8_t>& outcomes = scratch->outcomes;
  EvalPredicateOutcomes(expr, partition, &outcomes, scratch);
  for (size_t r = 0; r < outcomes.size(); ++r) {
    if (outcomes[r] == kPredTrue) {
      selection->push_back(static_cast<uint32_t>(r));
    }
  }
}

}  // namespace snowprune
