#include "expr/evaluator.h"

#include <algorithm>
#include <cassert>

#include "expr/like.h"

namespace snowprune {

namespace {

Value EvalArith(const ArithExpr& e, const MicroPartition& part, size_t row) {
  Value l = EvalScalar(*e.left(), part, row);
  Value r = EvalScalar(*e.right(), part, row);
  if (l.is_null() || r.is_null()) return Value::Null();
  if (!l.is_numeric() || !r.is_numeric()) return Value::Null();
  bool both_int = l.is_int64() && r.is_int64();
  switch (e.op()) {
    case ArithOp::kAdd:
      if (both_int) {
        int64_t out;
        if (!__builtin_add_overflow(l.int64_value(), r.int64_value(), &out)) {
          return Value(out);
        }
      }
      return Value(l.AsDouble() + r.AsDouble());
    case ArithOp::kSub:
      if (both_int) {
        int64_t out;
        if (!__builtin_sub_overflow(l.int64_value(), r.int64_value(), &out)) {
          return Value(out);
        }
      }
      return Value(l.AsDouble() - r.AsDouble());
    case ArithOp::kMul:
      if (both_int) {
        int64_t out;
        if (!__builtin_mul_overflow(l.int64_value(), r.int64_value(), &out)) {
          return Value(out);
        }
      }
      return Value(l.AsDouble() * r.AsDouble());
    case ArithOp::kDiv: {
      double d = r.AsDouble();
      if (d == 0.0) return Value::Null();
      return Value(l.AsDouble() / d);
    }
  }
  return Value::Null();
}

Value EvalCompare(const CompareExpr& e, const MicroPartition& part,
                  size_t row) {
  Value l = EvalScalar(*e.left(), part, row);
  Value r = EvalScalar(*e.right(), part, row);
  if (l.is_null() || r.is_null()) return Value::Null();
  // Incompatible kinds (e.g. string vs numeric) compare to NULL rather than
  // raising; plans built through the typed PlanBuilder never hit this.
  bool comparable = (l.is_string() == r.is_string()) &&
                    (l.is_bool() == r.is_bool());
  if (!comparable) return Value::Null();
  int c = Value::Compare(l, r);
  bool result = false;
  switch (e.op()) {
    case CompareOp::kEq: result = c == 0; break;
    case CompareOp::kNe: result = c != 0; break;
    case CompareOp::kLt: result = c < 0; break;
    case CompareOp::kLe: result = c <= 0; break;
    case CompareOp::kGt: result = c > 0; break;
    case CompareOp::kGe: result = c >= 0; break;
  }
  return Value(result);
}

Value EvalConnective(const BoolConnectiveExpr& e, const MicroPartition& part,
                     size_t row) {
  const bool is_and = e.kind() == ExprKind::kAnd;
  bool saw_null = false;
  for (const auto& term : e.terms()) {
    Value v = EvalScalar(*term, part, row);
    if (v.is_null()) {
      saw_null = true;
      continue;
    }
    bool b = v.bool_value();
    if (is_and && !b) return Value(false);   // FALSE dominates AND
    if (!is_and && b) return Value(true);    // TRUE dominates OR
  }
  if (saw_null) return Value::Null();
  return Value(is_and);
}

// ---------------------------------------------------------------------------
// Vectorized predicate evaluation (the ColumnBatch hot path)
// ---------------------------------------------------------------------------

void EvalMask(const Expr& expr, const MicroPartition& part,
              std::vector<uint8_t>* out, EvalScratch* scratch);

/// Per-row scalar fallback for nodes the vectorized evaluator does not
/// specialize (arithmetic, IF, nested value expressions). Boxes only the
/// values this subtree touches; the batch's data flow stays unboxed.
void FallbackMask(const Expr& expr, const MicroPartition& part,
                  std::vector<uint8_t>* out) {
  const size_t n = out->size();
  for (size_t r = 0; r < n; ++r) {
    Value v = EvalScalar(expr, part, r);
    (*out)[r] = v.is_null() ? kPredNull
                            : (v.bool_value() ? kPredTrue : kPredFalse);
  }
}

const ColumnVector* AsBoundColumn(const Expr& e, const MicroPartition& part) {
  if (e.kind() != ExprKind::kColumnRef) return nullptr;
  const auto& ref = static_cast<const ColumnRefExpr&>(e);
  if (!ref.bound() || ref.index() >= part.num_columns()) return nullptr;
  return &part.column(ref.index());
}

const Value* AsLiteral(const Expr& e) {
  if (e.kind() != ExprKind::kLiteral) return nullptr;
  return &static_cast<const LiteralExpr&>(e).value();
}

bool ApplyCmp(CompareOp op, int c) {
  switch (op) {
    case CompareOp::kEq: return c == 0;
    case CompareOp::kNe: return c != 0;
    case CompareOp::kLt: return c < 0;
    case CompareOp::kLe: return c <= 0;
    case CompareOp::kGt: return c > 0;
    case CompareOp::kGe: return c >= 0;
  }
  return false;
}

int CmpDouble(double x, double y) { return x < y ? -1 : (x > y ? 1 : 0); }
int CmpInt(int64_t x, int64_t y) { return x < y ? -1 : (x > y ? 1 : 0); }

/// Column-vs-literal comparison, typed loops per (column type, literal
/// kind). `flip` means the literal was the *left* operand. Mirrors
/// EvalCompare exactly: NULL on either side → NULL, cross-kind (string vs
/// numeric, bool vs anything else) → NULL.
void CompareColumnLiteral(const ColumnVector& col, const Value& lit,
                          CompareOp op, bool flip, std::vector<uint8_t>* out) {
  const size_t n = out->size();
  const auto& nulls = col.null_mask();
  auto run = [&](auto&& cmp_at) {
    for (size_t r = 0; r < n; ++r) {
      if (nulls[r]) {
        (*out)[r] = kPredNull;
        continue;
      }
      int c = cmp_at(r);
      if (flip) c = -c;
      (*out)[r] = ApplyCmp(op, c) ? kPredTrue : kPredFalse;
    }
  };
  switch (col.type()) {
    case DataType::kInt64:
      if (lit.is_int64()) {
        const int64_t y = lit.int64_value();
        const auto& xs = col.int64_data();
        run([&](size_t r) { return CmpInt(xs[r], y); });
        return;
      }
      if (lit.is_float64()) {
        const double y = lit.float64_value();
        const auto& xs = col.int64_data();
        run([&](size_t r) { return CmpDouble(static_cast<double>(xs[r]), y); });
        return;
      }
      break;
    case DataType::kFloat64:
      if (lit.is_numeric()) {
        const double y = lit.AsDouble();
        const auto& xs = col.float64_data();
        run([&](size_t r) { return CmpDouble(xs[r], y); });
        return;
      }
      break;
    case DataType::kString:
      if (lit.is_string()) {
        const std::string& y = lit.string_value();
        const auto& xs = col.string_data();
        run([&](size_t r) { return xs[r].compare(y); });
        return;
      }
      break;
    case DataType::kBool:
      if (lit.is_bool()) {
        const int y = lit.bool_value() ? 1 : 0;
        const auto& xs = col.bool_data();
        run([&](size_t r) { return static_cast<int>(xs[r]) - y; });
        return;
      }
      break;
  }
  // Cross-kind comparison: NULL for every row, matching EvalCompare.
  std::fill(out->begin(), out->end(), kPredNull);
}

void CompareColumnColumn(const ColumnVector& a, const ColumnVector& b,
                         CompareOp op, std::vector<uint8_t>* out) {
  const size_t n = out->size();
  const auto& an = a.null_mask();
  const auto& bn = b.null_mask();
  auto run = [&](auto&& cmp_at) {
    for (size_t r = 0; r < n; ++r) {
      if (an[r] || bn[r]) {
        (*out)[r] = kPredNull;
        continue;
      }
      (*out)[r] = ApplyCmp(op, cmp_at(r)) ? kPredTrue : kPredFalse;
    }
  };
  const bool a_num = a.type() == DataType::kInt64 || a.type() == DataType::kFloat64;
  const bool b_num = b.type() == DataType::kInt64 || b.type() == DataType::kFloat64;
  if (a_num && b_num) {
    if (a.type() == DataType::kInt64 && b.type() == DataType::kInt64) {
      const auto& xs = a.int64_data();
      const auto& ys = b.int64_data();
      run([&](size_t r) { return CmpInt(xs[r], ys[r]); });
    } else {
      auto at = [](const ColumnVector& c, size_t r) {
        return c.type() == DataType::kInt64
                   ? static_cast<double>(c.int64_data()[r])
                   : c.float64_data()[r];
      };
      run([&](size_t r) { return CmpDouble(at(a, r), at(b, r)); });
    }
    return;
  }
  if (a.type() == DataType::kString && b.type() == DataType::kString) {
    const auto& xs = a.string_data();
    const auto& ys = b.string_data();
    run([&](size_t r) { return xs[r].compare(ys[r]); });
    return;
  }
  if (a.type() == DataType::kBool && b.type() == DataType::kBool) {
    const auto& xs = a.bool_data();
    const auto& ys = b.bool_data();
    run([&](size_t r) {
      return static_cast<int>(xs[r]) - static_cast<int>(ys[r]);
    });
    return;
  }
  std::fill(out->begin(), out->end(), kPredNull);
}

void CompareMask(const CompareExpr& e, const MicroPartition& part,
                 std::vector<uint8_t>* out) {
  const ColumnVector* lc = AsBoundColumn(*e.left(), part);
  const ColumnVector* rc = AsBoundColumn(*e.right(), part);
  const Value* lv = AsLiteral(*e.left());
  const Value* rv = AsLiteral(*e.right());
  if (lc != nullptr && rv != nullptr) {
    if (rv->is_null()) {
      std::fill(out->begin(), out->end(), kPredNull);
      return;
    }
    CompareColumnLiteral(*lc, *rv, e.op(), /*flip=*/false, out);
    return;
  }
  if (lv != nullptr && rc != nullptr) {
    if (lv->is_null()) {
      std::fill(out->begin(), out->end(), kPredNull);
      return;
    }
    CompareColumnLiteral(*rc, *lv, e.op(), /*flip=*/true, out);
    return;
  }
  if (lc != nullptr && rc != nullptr) {
    CompareColumnColumn(*lc, *rc, e.op(), out);
    return;
  }
  FallbackMask(e, part, out);
}

void ConnectiveMask(const BoolConnectiveExpr& e, const MicroPartition& part,
                    std::vector<uint8_t>* out, EvalScratch* scratch) {
  const bool is_and = e.kind() == ExprKind::kAnd;
  const size_t n = out->size();
  std::fill(out->begin(), out->end(), is_and ? kPredTrue : kPredFalse);
  // One term buffer per connective nesting level, borrowed from the scratch
  // for the duration of this connective (the deque keeps the reference
  // stable while nested connectives extend the pool).
  if (scratch->term_depth == scratch->term_buffers.size()) {
    scratch->term_buffers.emplace_back();
  }
  std::vector<uint8_t>& term = scratch->term_buffers[scratch->term_depth];
  ++scratch->term_depth;
  term.resize(n);  // EvalMask overwrites every element per term
  for (const auto& t : e.terms()) {
    EvalMask(*t, part, &term, scratch);
    if (is_and) {
      for (size_t r = 0; r < n; ++r) {
        uint8_t& o = (*out)[r];
        if (term[r] == kPredFalse) {
          o = kPredFalse;  // FALSE dominates AND
        } else if (term[r] == kPredNull && o == kPredTrue) {
          o = kPredNull;
        }
      }
    } else {
      for (size_t r = 0; r < n; ++r) {
        uint8_t& o = (*out)[r];
        if (term[r] == kPredTrue) {
          o = kPredTrue;  // TRUE dominates OR
        } else if (term[r] == kPredNull && o == kPredFalse) {
          o = kPredNull;
        }
      }
    }
  }
  --scratch->term_depth;
}

void InListMask(const InListExpr& e, const MicroPartition& part,
                std::vector<uint8_t>* out) {
  const ColumnVector* col = AsBoundColumn(*e.input(), part);
  if (col == nullptr) {
    FallbackMask(e, part, out);
    return;
  }
  const size_t n = out->size();
  const auto& nulls = col->null_mask();
  const auto& vals = e.values();
  auto run = [&](auto&& match_at) {
    for (size_t r = 0; r < n; ++r) {
      if (nulls[r]) {
        (*out)[r] = kPredNull;
        continue;
      }
      (*out)[r] = match_at(r) ? kPredTrue : kPredFalse;
    }
  };
  switch (col->type()) {
    case DataType::kInt64: {
      const auto& xs = col->int64_data();
      run([&](size_t r) {
        for (const Value& cand : vals) {
          if (cand.is_null() || cand.is_string() || cand.is_bool()) continue;
          if (cand.is_int64() ? xs[r] == cand.int64_value()
                              : static_cast<double>(xs[r]) ==
                                    cand.float64_value()) {
            return true;
          }
        }
        return false;
      });
      return;
    }
    case DataType::kFloat64: {
      const auto& xs = col->float64_data();
      run([&](size_t r) {
        for (const Value& cand : vals) {
          if (cand.is_null() || cand.is_string() || cand.is_bool()) continue;
          if (xs[r] == cand.AsDouble()) return true;
        }
        return false;
      });
      return;
    }
    case DataType::kString: {
      const auto& xs = col->string_data();
      run([&](size_t r) {
        for (const Value& cand : vals) {
          if (cand.is_string() && xs[r] == cand.string_value()) return true;
        }
        return false;
      });
      return;
    }
    case DataType::kBool: {
      const auto& xs = col->bool_data();
      run([&](size_t r) {
        for (const Value& cand : vals) {
          if (cand.is_bool() && (xs[r] != 0) == cand.bool_value()) return true;
        }
        return false;
      });
      return;
    }
  }
  FallbackMask(e, part, out);
}

/// LIKE / STARTSWITH over a string column; non-string columns yield NULL
/// for every row (matching the scalar evaluator's !is_string() path).
template <typename MatchFn>
void StringMatchMask(const Expr& input, const MicroPartition& part,
                     MatchFn match, const Expr& whole,
                     std::vector<uint8_t>* out) {
  const ColumnVector* col = AsBoundColumn(input, part);
  if (col == nullptr) {
    FallbackMask(whole, part, out);
    return;
  }
  if (col->type() != DataType::kString) {
    std::fill(out->begin(), out->end(), kPredNull);
    return;
  }
  const size_t n = out->size();
  const auto& nulls = col->null_mask();
  const auto& xs = col->string_data();
  for (size_t r = 0; r < n; ++r) {
    (*out)[r] = nulls[r] ? kPredNull
                         : (match(xs[r]) ? kPredTrue : kPredFalse);
  }
}

void EvalMask(const Expr& expr, const MicroPartition& part,
              std::vector<uint8_t>* out, EvalScratch* scratch) {
  switch (expr.kind()) {
    case ExprKind::kCompare:
      CompareMask(static_cast<const CompareExpr&>(expr), part, out);
      return;
    case ExprKind::kAnd:
    case ExprKind::kOr:
      ConnectiveMask(static_cast<const BoolConnectiveExpr&>(expr), part, out,
                     scratch);
      return;
    case ExprKind::kNot: {
      EvalMask(*static_cast<const NotExpr&>(expr).input(), part, out, scratch);
      for (auto& m : *out) {
        if (m != kPredNull) m = m == kPredTrue ? kPredFalse : kPredTrue;
      }
      return;
    }
    case ExprKind::kNotTrue: {
      EvalMask(*static_cast<const NotTrueExpr&>(expr).input(), part, out,
               scratch);
      for (auto& m : *out) m = m == kPredTrue ? kPredFalse : kPredTrue;
      return;
    }
    case ExprKind::kIsNull: {
      const auto& e = static_cast<const IsNullExpr&>(expr);
      const ColumnVector* col = AsBoundColumn(*e.input(), part);
      if (col == nullptr) {
        FallbackMask(expr, part, out);
        return;
      }
      const auto& nulls = col->null_mask();
      for (size_t r = 0; r < out->size(); ++r) {
        const bool is_null = nulls[r] != 0;
        (*out)[r] =
            (e.negate() ? !is_null : is_null) ? kPredTrue : kPredFalse;
      }
      return;
    }
    case ExprKind::kLike: {
      const auto& e = static_cast<const LikeExpr&>(expr);
      StringMatchMask(
          *e.input(), part,
          [&](const std::string& s) { return LikeMatch(s, e.pattern()); },
          expr, out);
      return;
    }
    case ExprKind::kStartsWith: {
      const auto& e = static_cast<const StartsWithExpr&>(expr);
      StringMatchMask(
          *e.input(), part,
          [&](const std::string& s) {
            return s.compare(0, e.prefix().size(), e.prefix()) == 0;
          },
          expr, out);
      return;
    }
    case ExprKind::kInList:
      InListMask(static_cast<const InListExpr&>(expr), part, out);
      return;
    case ExprKind::kColumnRef: {
      const ColumnVector* col = AsBoundColumn(expr, part);
      if (col != nullptr && col->type() == DataType::kBool) {
        const auto& nulls = col->null_mask();
        const auto& xs = col->bool_data();
        for (size_t r = 0; r < out->size(); ++r) {
          (*out)[r] = nulls[r] ? kPredNull
                               : (xs[r] != 0 ? kPredTrue : kPredFalse);
        }
        return;
      }
      FallbackMask(expr, part, out);
      return;
    }
    case ExprKind::kLiteral: {
      const Value& v = static_cast<const LiteralExpr&>(expr).value();
      if (v.is_null()) {
        std::fill(out->begin(), out->end(), kPredNull);
        return;
      }
      if (v.is_bool()) {
        std::fill(out->begin(), out->end(),
                  v.bool_value() ? kPredTrue : kPredFalse);
        return;
      }
      FallbackMask(expr, part, out);
      return;
    }
    default:
      // kArith / kIf as a predicate root: scalar semantics per row.
      FallbackMask(expr, part, out);
      return;
  }
}

}  // namespace

Value EvalScalar(const Expr& expr, const MicroPartition& part, size_t row) {
  switch (expr.kind()) {
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      assert(ref.bound());
      return part.column(ref.index()).ValueAt(row);
    }
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(expr).value();
    case ExprKind::kArith:
      return EvalArith(static_cast<const ArithExpr&>(expr), part, row);
    case ExprKind::kCompare:
      return EvalCompare(static_cast<const CompareExpr&>(expr), part, row);
    case ExprKind::kAnd:
    case ExprKind::kOr:
      return EvalConnective(static_cast<const BoolConnectiveExpr&>(expr), part,
                            row);
    case ExprKind::kNot: {
      Value v = EvalScalar(*static_cast<const NotExpr&>(expr).input(), part, row);
      if (v.is_null()) return Value::Null();
      return Value(!v.bool_value());
    }
    case ExprKind::kNotTrue: {
      Value v = EvalScalar(*static_cast<const NotTrueExpr&>(expr).input(), part,
                           row);
      return Value(!(!v.is_null() && v.bool_value()));
    }
    case ExprKind::kIf: {
      const auto& e = static_cast<const IfExpr&>(expr);
      Value c = EvalScalar(*e.cond(), part, row);
      bool take_then = !c.is_null() && c.bool_value();
      return EvalScalar(take_then ? *e.then_expr() : *e.else_expr(), part, row);
    }
    case ExprKind::kLike: {
      const auto& e = static_cast<const LikeExpr&>(expr);
      Value v = EvalScalar(*e.input(), part, row);
      if (v.is_null()) return Value::Null();
      if (!v.is_string()) return Value::Null();
      return Value(LikeMatch(v.string_value(), e.pattern()));
    }
    case ExprKind::kStartsWith: {
      const auto& e = static_cast<const StartsWithExpr&>(expr);
      Value v = EvalScalar(*e.input(), part, row);
      if (v.is_null()) return Value::Null();
      if (!v.is_string()) return Value::Null();
      const std::string& s = v.string_value();
      return Value(s.compare(0, e.prefix().size(), e.prefix()) == 0);
    }
    case ExprKind::kInList: {
      const auto& e = static_cast<const InListExpr&>(expr);
      Value v = EvalScalar(*e.input(), part, row);
      if (v.is_null()) return Value::Null();
      for (const auto& cand : e.values()) {
        if (!cand.is_null() && (cand.is_string() == v.is_string()) &&
            (cand.is_bool() == v.is_bool()) && Value::Compare(v, cand) == 0) {
          return Value(true);
        }
      }
      return Value(false);
    }
    case ExprKind::kIsNull: {
      const auto& e = static_cast<const IsNullExpr&>(expr);
      Value v = EvalScalar(*e.input(), part, row);
      bool is_null = v.is_null();
      return Value(e.negate() ? !is_null : is_null);
    }
  }
  return Value::Null();
}

std::optional<bool> EvalPredicate(const Expr& expr,
                                  const MicroPartition& partition, size_t row) {
  Value v = EvalScalar(expr, partition, row);
  if (v.is_null()) return std::nullopt;
  return v.bool_value();
}

std::vector<uint8_t> EvalPredicateMask(const Expr& expr,
                                       const MicroPartition& partition) {
  std::vector<uint8_t> mask(partition.row_count(), 0);
  for (size_t i = 0; i < mask.size(); ++i) {
    auto r = EvalPredicate(expr, partition, i);
    mask[i] = (r.has_value() && *r) ? 1 : 0;
  }
  return mask;
}

int64_t CountMatches(const Expr& expr, const MicroPartition& partition) {
  int64_t n = 0;
  for (uint8_t m : EvalPredicateMask(expr, partition)) n += m;
  return n;
}

void EvalPredicateOutcomes(const Expr& expr, const MicroPartition& partition,
                           std::vector<uint8_t>* out) {
  EvalScratch scratch;
  EvalPredicateOutcomes(expr, partition, out, &scratch);
}

void EvalPredicateOutcomes(const Expr& expr, const MicroPartition& partition,
                           std::vector<uint8_t>* out, EvalScratch* scratch) {
  out->assign(static_cast<size_t>(partition.row_count()), kPredFalse);
  EvalMask(expr, partition, out, scratch);
}

void ComputeSelection(const Expr& expr, const MicroPartition& partition,
                      std::vector<uint32_t>* selection) {
  EvalScratch scratch;
  ComputeSelection(expr, partition, selection, &scratch);
}

void ComputeSelection(const Expr& expr, const MicroPartition& partition,
                      std::vector<uint32_t>* selection, EvalScratch* scratch) {
  selection->clear();
  std::vector<uint8_t>& outcomes = scratch->outcomes;
  EvalPredicateOutcomes(expr, partition, &outcomes, scratch);
  for (size_t r = 0; r < outcomes.size(); ++r) {
    if (outcomes[r] == kPredTrue) {
      selection->push_back(static_cast<uint32_t>(r));
    }
  }
}

}  // namespace snowprune
