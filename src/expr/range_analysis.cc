#include "expr/range_analysis.h"

#include <cassert>

#include "expr/like.h"

namespace snowprune {

std::string BoolRange::ToString() const {
  std::string s = "{";
  if (can_true) s += "T";
  if (can_false) s += "F";
  if (can_null) s += "N";
  return s + "}";
}

BoolRange AndRanges(const BoolRange& a, const BoolRange& b) {
  BoolRange r;
  r.can_false = a.can_false || b.can_false;
  r.can_true = a.can_true && b.can_true;
  r.can_null = (a.can_null && (b.can_true || b.can_null)) ||
               (b.can_null && (a.can_true || a.can_null));
  return r;
}

BoolRange OrRanges(const BoolRange& a, const BoolRange& b) {
  BoolRange r;
  r.can_true = a.can_true || b.can_true;
  r.can_false = a.can_false && b.can_false;
  r.can_null = (a.can_null && (b.can_false || b.can_null)) ||
               (b.can_null && (a.can_false || a.can_null));
  return r;
}

BoolRange NotRange(const BoolRange& a) {
  return BoolRange{a.can_false, a.can_true, a.can_null};
}

BoolRange NotTrueRange(const BoolRange& a) {
  return BoolRange{a.can_false || a.can_null, a.can_true, false};
}

BoolRange CompareRanges(const Interval& a, CompareOp op, const Interval& b) {
  BoolRange r;
  r.can_null = a.maybe_null || b.maybe_null || a.all_null || b.all_null;
  if (a.all_null || b.all_null) {
    r.can_true = false;
    r.can_false = false;
    return r;
  }
  // Compare the ranges of the *non-null* rows only; nulls are accounted for
  // by can_null above.
  Interval a2 = a;
  a2.maybe_null = false;
  Interval b2 = b;
  b2.maybe_null = false;
  TriBool t = CompareIntervals(a2, op, b2);
  r.can_true = t != TriBool::kFalse;
  r.can_false = t != TriBool::kTrue;
  return r;
}

namespace {

/// BoolRange for string `input` against the prefix range [prefix,
/// PrefixSuccessor(prefix)). `precise` says membership in the prefix range
/// is *equivalent* to the original predicate (pure-prefix LIKE or
/// STARTSWITH); imprecise patterns can never report "all rows match".
BoolRange PrefixRange(const Interval& in, const std::string& prefix,
                      bool precise) {
  BoolRange r;
  r.can_null = in.maybe_null || in.all_null;
  if (in.all_null) {
    r.can_true = false;
    r.can_false = false;
    return r;
  }
  if (prefix.empty()) {
    // Every string matches an empty prefix; precision decides can_false.
    r.can_true = true;
    r.can_false = !precise;
    return r;
  }
  auto succ = PrefixSuccessor(prefix);
  const Value p(prefix);
  bool lo_str = in.lo && in.lo->is_string();
  bool hi_str = in.hi && in.hi->is_string();
  // can_true: some value may fall in [prefix, succ).
  bool disjoint_below = hi_str && Value::Compare(*in.hi, p) < 0;
  bool disjoint_above =
      succ.has_value() && lo_str && Value::Compare(*in.lo, Value(*succ)) >= 0;
  r.can_true = !(disjoint_below || disjoint_above);
  // can_false: some value may fall outside the prefix range.
  bool contained = lo_str && hi_str && Value::Compare(*in.lo, p) >= 0 &&
                   (!succ.has_value() || Value::Compare(*in.hi, Value(*succ)) < 0);
  r.can_false = !(precise && contained);
  return r;
}

BoolRange AnalyzeLike(const LikeExpr& e, const std::vector<ColumnStats>& stats) {
  Interval in = DeriveInterval(*e.input(), stats);
  if (IsExactPattern(e.pattern())) {
    return CompareRanges(in, CompareOp::kEq, Interval::Point(Value(e.pattern())));
  }
  std::string prefix = LikePrefix(e.pattern());
  return PrefixRange(in, prefix, IsPurePrefixPattern(e.pattern()));
}

BoolRange AnalyzeInList(const InListExpr& e,
                        const std::vector<ColumnStats>& stats) {
  Interval in = DeriveInterval(*e.input(), stats);
  BoolRange r;
  r.can_null = in.maybe_null || in.all_null;
  if (in.all_null) {
    r.can_true = false;
    r.can_false = false;
    return r;
  }
  // can_true: any list value inside the input range.
  bool any_inside = false;
  bool all_cover_constant = false;
  for (const auto& v : e.values()) {
    if (v.is_null()) continue;
    BoolRange eq = CompareRanges(in, CompareOp::kEq, Interval::Point(v));
    if (eq.can_true) any_inside = true;
    if (!eq.can_false && !eq.can_null) all_cover_constant = true;
  }
  r.can_true = any_inside;
  r.can_false = !all_cover_constant;
  return r;
}

BoolRange AnalyzeIsNull(const IsNullExpr& e,
                        const std::vector<ColumnStats>& stats) {
  Interval in = DeriveInterval(*e.input(), stats);
  BoolRange is_null;
  is_null.can_true = in.maybe_null || in.all_null;
  is_null.can_false = !in.all_null;
  is_null.can_null = false;
  return e.negate() ? NotRange(is_null) : is_null;
}

}  // namespace

Interval DeriveInterval(const Expr& expr, const std::vector<ColumnStats>& stats) {
  switch (expr.kind()) {
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      assert(ref.bound());
      if (ref.index() >= stats.size()) return Interval::Unknown();
      return stats[ref.index()].ToInterval();
    }
    case ExprKind::kLiteral:
      return Interval::Point(static_cast<const LiteralExpr&>(expr).value());
    case ExprKind::kArith: {
      const auto& e = static_cast<const ArithExpr&>(expr);
      Interval l = DeriveInterval(*e.left(), stats);
      Interval r = DeriveInterval(*e.right(), stats);
      switch (e.op()) {
        case ArithOp::kAdd: return Add(l, r);
        case ArithOp::kSub: return Sub(l, r);
        case ArithOp::kMul: return Mul(l, r);
        case ArithOp::kDiv: {
          Interval d = Div(l, r);
          // Division by zero evaluates to NULL in this engine.
          d.maybe_null = true;
          return d;
        }
      }
      return Interval::Unknown();
    }
    case ExprKind::kIf: {
      const auto& e = static_cast<const IfExpr&>(expr);
      BoolRange c = AnalyzePredicate(*e.cond(), stats);
      // A non-TRUE (false or NULL) condition selects the else branch.
      bool cond_always_true = c.can_true && !c.can_false && !c.can_null;
      bool cond_never_true = !c.can_true;
      if (cond_always_true) return DeriveInterval(*e.then_expr(), stats);
      if (cond_never_true) return DeriveInterval(*e.else_expr(), stats);
      return Union(DeriveInterval(*e.then_expr(), stats),
                   DeriveInterval(*e.else_expr(), stats));
    }
    default: {
      // Boolean-valued expression used as a value: fold its outcome set
      // into a bool interval.
      BoolRange r = AnalyzePredicate(expr, stats);
      if (!r.can_true && !r.can_false) {
        return r.can_null ? Interval::AllNull() : Interval::Unknown();
      }
      Interval out = Interval::Range(Value(!r.can_false ? true : false),
                                     Value(r.can_true ? true : false),
                                     r.can_null);
      return out;
    }
  }
}

BoolRange AnalyzePredicate(const Expr& expr,
                           const std::vector<ColumnStats>& stats) {
  switch (expr.kind()) {
    case ExprKind::kLiteral: {
      const Value& v = static_cast<const LiteralExpr&>(expr).value();
      if (v.is_null()) return BoolRange::AlwaysNull();
      if (v.is_bool()) return BoolRange::Exactly(v.bool_value());
      return BoolRange::Unknown();
    }
    case ExprKind::kColumnRef: {
      // Boolean column as a predicate.
      Interval in = DeriveInterval(expr, stats);
      if (in.all_null) return BoolRange::AlwaysNull();
      BoolRange r;
      r.can_null = in.maybe_null;
      r.can_true = !(in.hi && in.hi->is_bool() && !in.hi->bool_value());
      r.can_false = !(in.lo && in.lo->is_bool() && in.lo->bool_value());
      return r;
    }
    case ExprKind::kCompare: {
      const auto& e = static_cast<const CompareExpr&>(expr);
      Interval l = DeriveInterval(*e.left(), stats);
      Interval r = DeriveInterval(*e.right(), stats);
      return CompareRanges(l, e.op(), r);
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      const auto& e = static_cast<const BoolConnectiveExpr&>(expr);
      const bool is_and = expr.kind() == ExprKind::kAnd;
      BoolRange acc = BoolRange::Exactly(is_and);
      for (const auto& term : e.terms()) {
        BoolRange t = AnalyzePredicate(*term, stats);
        acc = is_and ? AndRanges(acc, t) : OrRanges(acc, t);
      }
      return acc;
    }
    case ExprKind::kNot:
      return NotRange(
          AnalyzePredicate(*static_cast<const NotExpr&>(expr).input(), stats));
    case ExprKind::kNotTrue:
      return NotTrueRange(AnalyzePredicate(
          *static_cast<const NotTrueExpr&>(expr).input(), stats));
    case ExprKind::kIf: {
      const auto& e = static_cast<const IfExpr&>(expr);
      BoolRange c = AnalyzePredicate(*e.cond(), stats);
      BoolRange t = AnalyzePredicate(*e.then_expr(), stats);
      BoolRange f = AnalyzePredicate(*e.else_expr(), stats);
      bool cond_always_true = c.can_true && !c.can_false && !c.can_null;
      bool cond_never_true = !c.can_true;
      if (cond_always_true) return t;
      if (cond_never_true) return f;
      return BoolRange{t.can_true || f.can_true, t.can_false || f.can_false,
                       t.can_null || f.can_null};
    }
    case ExprKind::kLike:
      return AnalyzeLike(static_cast<const LikeExpr&>(expr), stats);
    case ExprKind::kStartsWith: {
      const auto& e = static_cast<const StartsWithExpr&>(expr);
      Interval in = DeriveInterval(*e.input(), stats);
      return PrefixRange(in, e.prefix(), /*precise=*/true);
    }
    case ExprKind::kInList:
      return AnalyzeInList(static_cast<const InListExpr&>(expr), stats);
    case ExprKind::kIsNull:
      return AnalyzeIsNull(static_cast<const IsNullExpr&>(expr), stats);
    case ExprKind::kArith:
      break;
  }
  return BoolRange::Unknown();
}

}  // namespace snowprune
