#include "expr/like.h"

namespace snowprune {

namespace {

/// Recursive wildcard match over [ti..] vs [pi..] with memo-free greedy %:
/// classic two-pointer algorithm with backtracking on the last %.
bool MatchImpl(const std::string& text, const std::string& pattern) {
  size_t ti = 0, pi = 0;
  size_t star_pi = std::string::npos, star_ti = 0;
  while (ti < text.size()) {
    if (pi < pattern.size() &&
        (pattern[pi] == '_' || pattern[pi] == text[ti])) {
      ++ti;
      ++pi;
    } else if (pi < pattern.size() && pattern[pi] == '%') {
      star_pi = pi++;
      star_ti = ti;
    } else if (star_pi != std::string::npos) {
      pi = star_pi + 1;
      ti = ++star_ti;
    } else {
      return false;
    }
  }
  while (pi < pattern.size() && pattern[pi] == '%') ++pi;
  return pi == pattern.size();
}

}  // namespace

bool LikeMatch(const std::string& text, const std::string& pattern) {
  return MatchImpl(text, pattern);
}

std::string LikePrefix(const std::string& pattern) {
  std::string prefix;
  for (char c : pattern) {
    if (c == '%' || c == '_') break;
    prefix.push_back(c);
  }
  return prefix;
}

bool IsPurePrefixPattern(const std::string& pattern) {
  if (pattern.empty() || pattern.back() != '%') return false;
  for (size_t i = 0; i + 1 < pattern.size(); ++i) {
    if (pattern[i] == '%' || pattern[i] == '_') return false;
  }
  return true;
}

bool IsExactPattern(const std::string& pattern) {
  for (char c : pattern) {
    if (c == '%' || c == '_') return false;
  }
  return true;
}

std::optional<std::string> PrefixSuccessor(const std::string& s) {
  std::string out = s;
  while (!out.empty()) {
    auto& back = reinterpret_cast<unsigned char&>(out.back());
    if (back != 0xFF) {
      ++back;
      return out;
    }
    out.pop_back();
  }
  return std::nullopt;
}

}  // namespace snowprune
