#ifndef SNOWPRUNE_EXPR_EXPR_H_
#define SNOWPRUNE_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/interval.h"
#include "common/status.h"
#include "common/value.h"
#include "storage/schema.h"

namespace snowprune {

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// AST node kinds. AND/OR are n-ary (their child lists are what the pruning
/// tree reorders, §3.2/Figure 3).
enum class ExprKind {
  kColumnRef,
  kLiteral,
  kArith,
  kCompare,
  kAnd,
  kOr,
  kNot,
  kNotTrue,  ///< SQL "x IS NOT TRUE"; used by the inverted-predicate pass (§4.2).
  kIf,
  kLike,
  kStartsWith,
  kInList,
  kIsNull,
};

/// Binary arithmetic operators.
enum class ArithOp { kAdd, kSub, kMul, kDiv };

const char* ToString(ArithOp op);

/// Base class for expression AST nodes. Trees are built via the helpers in
/// expr/builder.h, bound to a schema with BindExpr(), evaluated row-wise by
/// expr/evaluator.h, and analyzed against zone maps by
/// expr/range_analysis.h.
class Expr {
 public:
  explicit Expr(ExprKind kind) : kind_(kind) {}
  virtual ~Expr() = default;

  ExprKind kind() const { return kind_; }

  /// Direct children (empty for leaves).
  virtual std::vector<ExprPtr> children() const { return {}; }

  /// Canonical rendering; doubles as the plan-shape fingerprint used by the
  /// predicate cache and the repetitiveness analysis (Figure 12).
  virtual std::string ToString() const = 0;

 private:
  ExprKind kind_;
};

/// Reference to a column by name; `index` is resolved by BindExpr().
class ColumnRefExpr : public Expr {
 public:
  explicit ColumnRefExpr(std::string name)
      : Expr(ExprKind::kColumnRef), name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  bool bound() const { return index_ >= 0; }
  size_t index() const { return static_cast<size_t>(index_); }
  void set_index(size_t i) { index_ = static_cast<int64_t>(i); }
  void clear_binding() { index_ = -1; }

  std::string ToString() const override { return name_; }

 private:
  std::string name_;
  int64_t index_ = -1;
};

/// A constant.
class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value value)
      : Expr(ExprKind::kLiteral), value_(std::move(value)) {}

  const Value& value() const { return value_; }

  std::string ToString() const override { return value_.ToString(); }

 private:
  Value value_;
};

/// left op right over numerics. Division by zero yields NULL.
class ArithExpr : public Expr {
 public:
  ArithExpr(ArithOp op, ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kArith),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}

  ArithOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

  std::vector<ExprPtr> children() const override { return {left_, right_}; }
  std::string ToString() const override;

 private:
  ArithOp op_;
  ExprPtr left_, right_;
};

/// left op right, SQL three-valued comparison semantics.
class CompareExpr : public Expr {
 public:
  CompareExpr(CompareOp op, ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kCompare),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}

  CompareOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

  std::vector<ExprPtr> children() const override { return {left_, right_}; }
  std::string ToString() const override;

 private:
  CompareOp op_;
  ExprPtr left_, right_;
};

/// N-ary conjunction (kAnd) or disjunction (kOr).
class BoolConnectiveExpr : public Expr {
 public:
  BoolConnectiveExpr(ExprKind kind, std::vector<ExprPtr> terms)
      : Expr(kind), terms_(std::move(terms)) {}

  const std::vector<ExprPtr>& terms() const { return terms_; }

  std::vector<ExprPtr> children() const override { return terms_; }
  std::string ToString() const override;

 private:
  std::vector<ExprPtr> terms_;
};

/// SQL NOT (NULL stays NULL).
class NotExpr : public Expr {
 public:
  explicit NotExpr(ExprPtr input)
      : Expr(ExprKind::kNot), input_(std::move(input)) {}

  const ExprPtr& input() const { return input_; }

  std::vector<ExprPtr> children() const override { return {input_}; }
  std::string ToString() const override {
    return "NOT (" + input_->ToString() + ")";
  }

 private:
  ExprPtr input_;
};

/// "input IS NOT TRUE": true iff input is FALSE or NULL; never NULL itself.
/// This is the sound building block for the fully-matching second pass:
/// a partition where `P IS NOT TRUE` can be pruned has only P=TRUE rows.
class NotTrueExpr : public Expr {
 public:
  explicit NotTrueExpr(ExprPtr input)
      : Expr(ExprKind::kNotTrue), input_(std::move(input)) {}

  const ExprPtr& input() const { return input_; }

  std::vector<ExprPtr> children() const override { return {input_}; }
  std::string ToString() const override {
    return "(" + input_->ToString() + ") IS NOT TRUE";
  }

 private:
  ExprPtr input_;
};

/// IF(cond, then, else); a non-TRUE (false or NULL) condition selects `else`.
class IfExpr : public Expr {
 public:
  IfExpr(ExprPtr cond, ExprPtr then_expr, ExprPtr else_expr)
      : Expr(ExprKind::kIf),
        cond_(std::move(cond)),
        then_(std::move(then_expr)),
        else_(std::move(else_expr)) {}

  const ExprPtr& cond() const { return cond_; }
  const ExprPtr& then_expr() const { return then_; }
  const ExprPtr& else_expr() const { return else_; }

  std::vector<ExprPtr> children() const override { return {cond_, then_, else_}; }
  std::string ToString() const override;

 private:
  ExprPtr cond_, then_, else_;
};

/// input LIKE 'pattern' with SQL wildcards % and _ (no escape support).
class LikeExpr : public Expr {
 public:
  LikeExpr(ExprPtr input, std::string pattern)
      : Expr(ExprKind::kLike),
        input_(std::move(input)),
        pattern_(std::move(pattern)) {}

  const ExprPtr& input() const { return input_; }
  const std::string& pattern() const { return pattern_; }

  std::vector<ExprPtr> children() const override { return {input_}; }
  std::string ToString() const override {
    return input_->ToString() + " LIKE '" + pattern_ + "'";
  }

 private:
  ExprPtr input_;
  std::string pattern_;
};

/// STARTSWITH(input, prefix). Also the target of the imprecise LIKE rewrite
/// (§3.1): pruning may widen LIKE 'p%s' to STARTSWITH('p').
class StartsWithExpr : public Expr {
 public:
  StartsWithExpr(ExprPtr input, std::string prefix)
      : Expr(ExprKind::kStartsWith),
        input_(std::move(input)),
        prefix_(std::move(prefix)) {}

  const ExprPtr& input() const { return input_; }
  const std::string& prefix() const { return prefix_; }

  std::vector<ExprPtr> children() const override { return {input_}; }
  std::string ToString() const override {
    return "STARTSWITH(" + input_->ToString() + ", '" + prefix_ + "')";
  }

 private:
  ExprPtr input_;
  std::string prefix_;
};

/// input IN (v1, ..., vn) over literal values.
class InListExpr : public Expr {
 public:
  InListExpr(ExprPtr input, std::vector<Value> values)
      : Expr(ExprKind::kInList),
        input_(std::move(input)),
        values_(std::move(values)) {}

  const ExprPtr& input() const { return input_; }
  const std::vector<Value>& values() const { return values_; }

  std::vector<ExprPtr> children() const override { return {input_}; }
  std::string ToString() const override;

 private:
  ExprPtr input_;
  std::vector<Value> values_;
};

/// input IS NULL (negate == true gives IS NOT NULL). Never evaluates to NULL.
class IsNullExpr : public Expr {
 public:
  IsNullExpr(ExprPtr input, bool negate)
      : Expr(ExprKind::kIsNull), input_(std::move(input)), negate_(negate) {}

  const ExprPtr& input() const { return input_; }
  bool negate() const { return negate_; }

  std::vector<ExprPtr> children() const override { return {input_}; }
  std::string ToString() const override {
    return input_->ToString() + (negate_ ? " IS NOT NULL" : " IS NULL");
  }

 private:
  ExprPtr input_;
  bool negate_;
};

/// Resolves every ColumnRef in the tree against `schema`. Fails with
/// NotFound if a name is missing.
Status BindExpr(const ExprPtr& expr, const Schema& schema);

/// Collects the distinct column names referenced by the tree.
std::vector<std::string> ReferencedColumns(const ExprPtr& expr);

}  // namespace snowprune

#endif  // SNOWPRUNE_EXPR_EXPR_H_
