#ifndef SNOWPRUNE_EXPR_EVALUATOR_H_
#define SNOWPRUNE_EXPR_EVALUATOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "expr/expr.h"
#include "storage/partition.h"

namespace snowprune {

/// Row-wise scalar evaluation of a bound expression against one row of a
/// micro-partition. NULL propagates per SQL semantics; division by zero
/// yields NULL; comparisons across incompatible kinds yield NULL.
Value EvalScalar(const Expr& expr, const MicroPartition& partition, size_t row);

/// Predicate evaluation in SQL three-valued logic: true/false, or nullopt
/// for NULL.
std::optional<bool> EvalPredicate(const Expr& expr,
                                  const MicroPartition& partition, size_t row);

/// Evaluates a predicate over all rows of a partition; mask[i] == 1 iff the
/// row satisfies the predicate (NULL counts as not satisfied).
std::vector<uint8_t> EvalPredicateMask(const Expr& expr,
                                       const MicroPartition& partition);

/// Number of rows in `partition` satisfying `expr` (brute force; the test
/// oracle that pruning results are validated against).
int64_t CountMatches(const Expr& expr, const MicroPartition& partition);

}  // namespace snowprune

#endif  // SNOWPRUNE_EXPR_EVALUATOR_H_
