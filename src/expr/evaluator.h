#ifndef SNOWPRUNE_EXPR_EVALUATOR_H_
#define SNOWPRUNE_EXPR_EVALUATOR_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "expr/expr.h"
#include "storage/partition.h"

namespace snowprune {

/// Row-wise scalar evaluation of a bound expression against one row of a
/// micro-partition. NULL propagates per SQL semantics; division by zero
/// yields NULL; comparisons across incompatible kinds yield NULL.
Value EvalScalar(const Expr& expr, const MicroPartition& partition, size_t row);

/// Predicate evaluation in SQL three-valued logic: true/false, or nullopt
/// for NULL.
std::optional<bool> EvalPredicate(const Expr& expr,
                                  const MicroPartition& partition, size_t row);

/// Evaluates a predicate over all rows of a partition; mask[i] == 1 iff the
/// row satisfies the predicate (NULL counts as not satisfied). Row-by-row
/// scalar evaluation — kept brute-force on purpose, as the oracle the
/// vectorized path is property-tested against.
std::vector<uint8_t> EvalPredicateMask(const Expr& expr,
                                       const MicroPartition& partition);

/// Three-valued outcome encoding used by the vectorized predicate path.
enum PredicateOutcome : uint8_t {
  kPredFalse = 0,
  kPredTrue = 1,
  kPredNull = 2,
};

/// Reusable buffers for the vectorized predicate path. Evaluating a
/// connective needs one term buffer per nesting level, and ComputeSelection
/// needs an outcome buffer; without a scratch both are heap-allocated anew
/// for every partition, which the scan hot path feels as allocator pressure.
/// Callers keep one scratch per evaluating thread and pass it to every
/// partition's evaluation; buffers grow to the high-water partition size and
/// stay. A deque keeps term-buffer references stable while nested
/// connectives extend the pool mid-recursion. Not thread-safe: one scratch
/// must never serve two concurrent evaluations.
struct EvalScratch {
  std::vector<uint8_t> outcomes;                ///< ComputeSelection's mask.
  std::deque<std::vector<uint8_t>> term_buffers;///< One per connective depth.
  size_t term_depth = 0;                        ///< Currently acquired count.
};

/// Vectorized predicate evaluation (the ColumnBatch hot path): fills `out`
/// with one PredicateOutcome per partition row. Semantics are identical to
/// EvalPredicate row-by-row; comparisons against literals, column-column
/// comparisons, AND/OR/NOT, IS [NOT] NULL, IN, LIKE and STARTSWITH over
/// column inputs run unboxed column-at-a-time, any other node (arithmetic,
/// IF, nested value expressions) falls back to the scalar evaluator for
/// that subtree's rows.
void EvalPredicateOutcomes(const Expr& expr, const MicroPartition& partition,
                           std::vector<uint8_t>* out);
/// Scratch-reusing variant: connective term buffers come from `scratch`
/// instead of per-call allocations (the scan hot path's form).
void EvalPredicateOutcomes(const Expr& expr, const MicroPartition& partition,
                           std::vector<uint8_t>* out, EvalScratch* scratch);

/// Fills `selection` (replacing its contents) with the physical indexes of
/// the rows of `partition` satisfying `expr`, in ascending order — the
/// selection-vector form consumed by ColumnBatch.
void ComputeSelection(const Expr& expr, const MicroPartition& partition,
                      std::vector<uint32_t>* selection);
/// Scratch-reusing variant (see EvalScratch).
void ComputeSelection(const Expr& expr, const MicroPartition& partition,
                      std::vector<uint32_t>* selection, EvalScratch* scratch);

/// Number of rows in `partition` satisfying `expr` (brute force; the test
/// oracle that pruning results are validated against).
int64_t CountMatches(const Expr& expr, const MicroPartition& partition);

}  // namespace snowprune

#endif  // SNOWPRUNE_EXPR_EVALUATOR_H_
