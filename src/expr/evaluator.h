#ifndef SNOWPRUNE_EXPR_EVALUATOR_H_
#define SNOWPRUNE_EXPR_EVALUATOR_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "expr/expr.h"
#include "storage/partition.h"

namespace snowprune {

/// Row-wise scalar evaluation of a bound expression against one row of a
/// micro-partition. NULL propagates per SQL semantics; division by zero
/// yields NULL; comparisons across incompatible kinds yield NULL.
Value EvalScalar(const Expr& expr, const MicroPartition& partition, size_t row);

/// Predicate evaluation in SQL three-valued logic: true/false, or nullopt
/// for NULL.
std::optional<bool> EvalPredicate(const Expr& expr,
                                  const MicroPartition& partition, size_t row);

/// Evaluates a predicate over all rows of a partition; mask[i] == 1 iff the
/// row satisfies the predicate (NULL counts as not satisfied). Row-by-row
/// scalar evaluation — kept brute-force on purpose, as the oracle the
/// vectorized path is property-tested against.
std::vector<uint8_t> EvalPredicateMask(const Expr& expr,
                                       const MicroPartition& partition);

/// Three-valued outcome encoding used by the vectorized predicate path.
enum PredicateOutcome : uint8_t {
  kPredFalse = 0,
  kPredTrue = 1,
  kPredNull = 2,
};

/// Per-row lane tags for NumericLanes: which lane holds row r's value.
/// Mirrors the scalar evaluator's dynamic numeric typing (int64 arithmetic
/// with per-row overflow fallback to double) without boxing a Value per row.
enum NumericLaneKind : uint8_t {
  kLaneNull = 0,
  kLaneInt64 = 1,
  kLaneDouble = 2,
};

/// The unboxed result of evaluating an arithmetic/IF value subtree over a
/// partition: parallel int64/double lanes plus a per-row kind tag (the null
/// mask is kind == kLaneNull). Indexed by physical row; only the lane named
/// by `kind[r]` is meaningful for row r.
struct NumericLanes {
  std::vector<uint8_t> kind;
  std::vector<int64_t> i64;
  std::vector<double> f64;

  void Resize(size_t n) {
    kind.resize(n);
    i64.resize(n);
    f64.resize(n);
  }
};

/// Reusable buffers for the vectorized predicate path. Evaluating a
/// connective needs one term buffer per nesting level, ComputeSelection
/// needs an outcome buffer, selection-aware AND/OR need an active-row list
/// per level, and typed arithmetic/IF need a pair of value-lane buffers per
/// expression depth; without a scratch all of these are heap-allocated anew
/// for every partition, which the scan hot path feels as allocator pressure.
/// Callers keep one scratch per evaluating thread and pass it to every
/// partition's evaluation; buffers grow to the high-water partition size and
/// stay (grow-only — the worker-side morsel fold reuses one scratch per pool
/// thread across every query that lands on it). Deques keep buffer
/// references stable while nested expressions extend the pools
/// mid-recursion. Not thread-safe: one scratch must never serve two
/// concurrent evaluations.
struct EvalScratch {
  std::vector<uint8_t> outcomes;                ///< ComputeSelection's mask.
  std::deque<std::vector<uint8_t>> term_buffers;///< One per mask depth.
  size_t term_depth = 0;                        ///< Currently acquired count.
  std::deque<std::vector<uint32_t>> row_buffers;///< Active-row lists.
  size_t row_depth = 0;
  std::deque<NumericLanes> lane_buffers;        ///< Arithmetic/IF lanes.
  size_t lane_depth = 0;
};

/// LIFO accessors over the EvalScratch pools, shared by the vectorized
/// interpreter and the bytecode executor (src/expr/jit/). Acquire sizes the
/// buffer for `n` rows and bumps the depth; Release must mirror in strict
/// LIFO order. The deques keep references stable while nested acquisitions
/// extend the pools.
inline std::vector<uint8_t>& AcquireMask(EvalScratch* s, size_t n) {
  if (s->term_depth == s->term_buffers.size()) s->term_buffers.emplace_back();
  std::vector<uint8_t>& buf = s->term_buffers[s->term_depth++];
  buf.resize(n);
  return buf;
}
inline void ReleaseMask(EvalScratch* s) { --s->term_depth; }

inline std::vector<uint32_t>& AcquireRows(EvalScratch* s) {
  if (s->row_depth == s->row_buffers.size()) s->row_buffers.emplace_back();
  return s->row_buffers[s->row_depth++];
}
inline void ReleaseRows(EvalScratch* s) { --s->row_depth; }

inline NumericLanes& AcquireLanes(EvalScratch* s, size_t n) {
  if (s->lane_depth == s->lane_buffers.size()) s->lane_buffers.emplace_back();
  NumericLanes& lanes = s->lane_buffers[s->lane_depth++];
  lanes.Resize(n);
  return lanes;
}
inline void ReleaseLanes(EvalScratch* s) { --s->lane_depth; }

/// Vectorized predicate evaluation (the ColumnBatch hot path): fills `out`
/// with one PredicateOutcome per partition row. Semantics are identical to
/// EvalPredicate row-by-row; comparisons against literals, column-column
/// comparisons, AND/OR/NOT, IS [NOT] NULL, IN, LIKE and STARTSWITH over
/// column inputs run unboxed column-at-a-time; arithmetic subtrees run in
/// typed int64/double lanes with per-row overflow/null tags; IF runs
/// vectorized by splitting rows on the condition mask; AND terms evaluate
/// only rows not yet proven FALSE and OR terms only rows not yet proven
/// TRUE (selection-aware connectives). Only shapes outside all of that
/// (string/bool-valued subexpressions in value position, unbound columns)
/// fall back to the scalar evaluator, and then only for the rows still
/// alive at that point in the tree.
void EvalPredicateOutcomes(const Expr& expr, const MicroPartition& partition,
                           std::vector<uint8_t>* out);
/// Scratch-reusing variant: connective term buffers come from `scratch`
/// instead of per-call allocations (the scan hot path's form).
void EvalPredicateOutcomes(const Expr& expr, const MicroPartition& partition,
                           std::vector<uint8_t>* out, EvalScratch* scratch);

/// Fills `selection` (replacing its contents) with the physical indexes of
/// the rows of `partition` satisfying `expr`, in ascending order — the
/// selection-vector form consumed by ColumnBatch.
void ComputeSelection(const Expr& expr, const MicroPartition& partition,
                      std::vector<uint32_t>* selection);
/// Scratch-reusing variant (see EvalScratch).
void ComputeSelection(const Expr& expr, const MicroPartition& partition,
                      std::vector<uint32_t>* selection, EvalScratch* scratch);

/// Number of rows in `partition` satisfying `expr` (brute force; the test
/// oracle that pruning results are validated against).
int64_t CountMatches(const Expr& expr, const MicroPartition& partition);

}  // namespace snowprune

#endif  // SNOWPRUNE_EXPR_EVALUATOR_H_
